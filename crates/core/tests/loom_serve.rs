//! Model checking for the `core::serve` epoch publication protocol.
//!
//! The runtime serve tests race real threads, which samples schedules; this
//! suite enumerates **every** interleaving of a paper-model of the protocol
//! with the `dkindex-loom` explorer (the offline loom stand-in — see
//! `crates/loom-shim` for why step-atomic exhaustive interleaving is sound
//! for a fully lock-protected protocol like this one).
//!
//! Modeled protocol, mirroring `core::serve`:
//!
//! * submitters push ops into a FIFO queue (the mpsc channel);
//! * one maintenance thread atomically drains the queue, applies the ops in
//!   submission order to its owned state, and publishes a new epoch (the
//!   `RwLock<Arc<Epoch>>` pointer swap) — apply+publish is one critical
//!   section, matching the single-writer discipline;
//! * readers atomically load the current epoch and evaluate against it,
//!   with a memo keyed by the epoch (the per-epoch query cache).
//!
//! Checked properties: epoch snapshots are prefix-folds of submission
//! order (determinism vs the serial oracle), published state never skips
//! or reorders ops, reader observations are always consistent with some
//! published epoch, and the per-epoch memo can never serve an answer from
//! a different epoch. A deliberately broken variant (a global memo that
//! survives publishes) must be *caught* — proving the checker has teeth.
//!
//! The second half models the **tuner-in-the-loop** protocol layered on
//! top (live tuning + durable acks): readers feed the lock-free
//! `LoadMonitor`, the maintenance thread harvests it after each publish
//! and self-enqueues mined ops through the same channel, group commits can
//! fail and poison the server, and durable acks release only after
//! commit + publish. Checked: the poisoned flag is sticky and nothing
//! publishes after it, an `Ok(epoch)`-acked op is visible in that epoch
//! (no acked op lost), a failed ack's op is never applied, monitor feeds
//! are conserved across harvests, and tuner ops obey channel order. Two
//! broken variants — acks released before the commit decision, and a step
//! that clears the poisoned flag — must be caught.

use loom::{explore, thread, Step};

/// The submission order every model run uses. Epoch state is the applied
/// prefix of this sequence.
const OPS: [u32; 3] = [10, 20, 30];

/// Shared state of the protocol model. Everything a real run keeps behind
/// locks/channels is a plain field here; steps are the critical sections.
#[derive(Clone, Default)]
struct ServeModel {
    /// The op channel: submitted but not yet drained.
    queue: Vec<u32>,
    /// Maintenance-owned state: ops applied, in order.
    applied: Vec<u32>,
    /// Epoch history; `published[i]` is the state snapshot of epoch `i`.
    /// Index 0 is the initial (empty) epoch.
    published: Vec<Vec<u32>>,
    /// Reader observations: (epoch id, state seen).
    observed: Vec<(usize, Vec<u32>)>,
    /// Per-epoch memo: (epoch id it was computed on, cached answer).
    memo: Option<(usize, u32)>,
    /// Memoized answers readers actually returned: (epoch id, answer).
    answers: Vec<(usize, u32)>,
}

impl ServeModel {
    fn initial() -> ServeModel {
        ServeModel {
            published: vec![Vec::new()],
            ..ServeModel::default()
        }
    }

    /// The modeled query result on an epoch's state: something that changes
    /// whenever an op is applied, so staleness is observable.
    fn answer_on(state: &[u32]) -> u32 {
        state.iter().sum::<u32>() + state.len() as u32
    }
}

/// A submitter step: enqueue the next op (one mpsc send).
fn submit(op: u32) -> Step<ServeModel> {
    Box::new(move |s: &mut ServeModel| s.queue.push(op))
}

/// A maintenance step: drain the whole queue, apply in order, publish one
/// new epoch if anything was applied. Atomic, like the real single-writer
/// critical section.
fn maintain() -> Step<ServeModel> {
    Box::new(|s: &mut ServeModel| {
        if s.queue.is_empty() {
            return;
        }
        s.applied.append(&mut s.queue);
        s.published.push(s.applied.clone());
    })
}

/// A reader step: load the current epoch and record what it saw.
fn read() -> Step<ServeModel> {
    Box::new(|s: &mut ServeModel| {
        let id = s.published.len() - 1;
        let state = s.published[id].clone();
        s.observed.push((id, state));
    })
}

/// A reader step with the **correct** memo: keyed by epoch id, so a publish
/// invalidates it by key mismatch (the real code drops the memo with the
/// epoch `Arc` — same invariant).
fn read_memoized() -> Step<ServeModel> {
    Box::new(|s: &mut ServeModel| {
        let id = s.published.len() - 1;
        let answer = match s.memo {
            Some((memo_id, cached)) if memo_id == id => cached,
            _ => {
                let fresh = ServeModel::answer_on(&s.published[id]);
                s.memo = Some((id, fresh));
                fresh
            }
        };
        s.answers.push((id, answer));
    })
}

/// A reader step with a **broken** global memo that survives publishes —
/// the bug the per-epoch design exists to make impossible.
fn read_global_memo() -> Step<ServeModel> {
    Box::new(|s: &mut ServeModel| {
        let id = s.published.len() - 1;
        let answer = match s.memo {
            Some((_, cached)) => cached,
            None => {
                let fresh = ServeModel::answer_on(&s.published[id]);
                s.memo = Some((id, fresh));
                fresh
            }
        };
        s.answers.push((id, answer));
    })
}

/// Epochs are prefix-folds of submission order, ids are dense and
/// monotone, and the newest epoch always equals the applied state.
fn epoch_invariant(s: &ServeModel) -> Result<(), String> {
    for (id, state) in s.published.iter().enumerate() {
        if state.as_slice() != &OPS[..state.len()] {
            return Err(format!("epoch {id} is not a submission-order prefix: {state:?}"));
        }
        if id > 0 && state.len() <= s.published[id - 1].len() {
            return Err(format!("epoch {id} did not grow over epoch {}", id - 1));
        }
    }
    match s.published.last() {
        Some(newest) if newest == &s.applied => Ok(()),
        _ => Err("newest epoch diverged from the maintenance-owned state".to_string()),
    }
}

/// Every reader observation matches the epoch it claims to have read.
fn observation_invariant(s: &ServeModel) -> Result<(), String> {
    for (id, state) in &s.observed {
        match s.published.get(*id) {
            Some(published) if published == state => {}
            _ => return Err(format!("observation of epoch {id} saw {state:?}")),
        }
    }
    Ok(())
}

/// Every answer a reader returned is exact for the epoch it was read on.
fn memo_invariant(s: &ServeModel) -> Result<(), String> {
    for (id, answer) in &s.answers {
        let expected = ServeModel::answer_on(&s.published[*id]);
        if *answer != expected {
            return Err(format!(
                "epoch {id} answered {answer}, expected {expected}: stale memo served"
            ));
        }
    }
    Ok(())
}

/// Epoch publication: under every interleaving of 3 submits, 2 maintenance
/// drains, and 2 reads, epochs are submission-order prefixes and readers
/// only ever observe published, consistent snapshots.
#[test]
fn epoch_publication_is_consistent_under_all_interleavings() {
    let explored = explore(
        &ServeModel::initial(),
        vec![
            thread("submitter", OPS.iter().map(|&op| submit(op)).collect()),
            thread("maintenance", vec![maintain(), maintain()]),
            thread("reader", vec![read(), read()]),
        ],
        |s| {
            epoch_invariant(s)?;
            observation_invariant(s)
        },
        |_| Ok(()),
    )
    .unwrap_or_else(|v| panic!("{v}"));
    assert!(explored.interleavings > 100, "model too small to mean anything");
}

/// Determinism vs the serial oracle: whatever the schedule, the applied
/// prefix plus the still-queued suffix is exactly the submission order —
/// draining the rest serially lands on the serial fold's result.
#[test]
fn any_schedule_converges_to_the_serial_fold() {
    explore(
        &ServeModel::initial(),
        vec![
            thread("submitter", OPS.iter().map(|&op| submit(op)).collect()),
            thread("maintenance", vec![maintain(), maintain(), maintain()]),
        ],
        epoch_invariant,
        |s| {
            let mut serial = s.applied.clone();
            serial.extend(&s.queue);
            if serial == OPS {
                Ok(())
            } else {
                Err(format!("applied {:?} + queued {:?} lost or reordered ops", s.applied, s.queue))
            }
        },
    )
    .unwrap_or_else(|v| panic!("{v}"));
}

/// The per-epoch memo never serves an answer computed on a different
/// epoch, under every interleaving of updates and memoized reads.
#[test]
fn per_epoch_memo_never_serves_stale_answers() {
    explore(
        &ServeModel::initial(),
        vec![
            thread("submitter", OPS.iter().map(|&op| submit(op)).collect()),
            thread("maintenance", vec![maintain(), maintain()]),
            thread("reader", vec![read_memoized(), read_memoized(), read_memoized()]),
        ],
        |s| {
            epoch_invariant(s)?;
            memo_invariant(s)
        },
        |_| Ok(()),
    )
    .unwrap_or_else(|v| panic!("{v}"));
}

/// Teeth check: a global memo that survives publishes MUST be caught — the
/// explorer has to find the schedule where a reader memoizes on the old
/// epoch and replays it after an update published a new one.
#[test]
fn global_memo_bug_is_caught_by_the_explorer() {
    let violation = explore(
        &ServeModel::initial(),
        vec![
            thread("submitter", vec![submit(OPS[0])]),
            thread("maintenance", vec![maintain()]),
            thread("reader", vec![read_global_memo(), read_global_memo()]),
        ],
        |s| {
            epoch_invariant(s)?;
            memo_invariant(s)
        },
        |_| Ok(()),
    )
    .expect_err("the stale global memo must be detected");
    assert!(
        violation.message.contains("stale memo served"),
        "wrong violation: {violation}"
    );
}

// ---------------------------------------------------------------------------
// Tuner-in-the-loop: WAL poisoning, durable acks, monitor feeds, self-enqueue
// ---------------------------------------------------------------------------

/// Monitor harvests at or above this many recorded queries mine one tuner op
/// (the model's `ServeConfig::tune_window`).
const TUNE_WINDOW: u64 = 2;
/// Tuner self-enqueued ops get ids at/above this; client ops stay below.
const TUNER_BASE: u32 = 100;

/// Shared state of the tuned protocol model. As above, everything the real
/// run keeps behind locks/channels/atomics is a plain field; steps are the
/// critical sections of `core::serve`'s maintenance loop, submitters, and
/// epoch readers.
#[derive(Clone, Default)]
struct TunedModel {
    /// The op channel: client submits and tuner self-enqueues, FIFO.
    queue: Vec<u32>,
    /// Every op ever enqueued, in channel order — the serial oracle's input.
    enqueued: Vec<u32>,
    /// Maintenance-owned state: ops applied, in order.
    applied: Vec<u32>,
    /// Epoch history; index 0 is the initial (empty) epoch.
    published: Vec<Vec<u32>>,
    /// Released acks: (client op, Ok(epoch id) | Err(reason)).
    acks: Vec<(u32, Result<usize, &'static str>)>,
    /// The `poisoned: AtomicBool` submitters fast-fail on.
    poisoned: bool,
    /// Latches the first poisoning; stickiness is `ever_poisoned → poisoned`.
    ever_poisoned: bool,
    /// `published.len()` at the moment of poisoning: it must never grow past
    /// this (a poisoned server drops every batch unapplied).
    epochs_at_poison: usize,
    /// Armed fail point: the next group commit of a non-empty batch fails.
    wal_fail_next: bool,
    /// Reader-side `LoadMonitor`: queries recorded but not yet harvested.
    monitor_pending: u64,
    /// Total queries the tuner has harvested out of the monitor.
    monitor_harvested: u64,
    /// Total reader feed steps executed — the conservation oracle.
    fed: u64,
    next_tuner_op: u32,
}

impl TunedModel {
    fn initial() -> TunedModel {
        TunedModel {
            published: vec![Vec::new()],
            ..TunedModel::default()
        }
    }
}

/// A submitter step: `submit_logged` — fast-fail with the typed error on a
/// poisoned server, otherwise enqueue and wait on the returned ack.
fn submit_logged(op: u32) -> Step<TunedModel> {
    Box::new(move |s: &mut TunedModel| {
        if s.poisoned {
            s.acks.push((op, Err("fast-fail")));
        } else {
            s.queue.push(op);
            s.enqueued.push(op);
        }
    })
}

/// A reader step: load the current epoch, answer a query against it, and
/// record the query into the lock-free `LoadMonitor`.
fn read_and_feed() -> Step<TunedModel> {
    Box::new(|s: &mut TunedModel| {
        let _snapshot = s.published.last().expect("initial epoch always exists");
        s.monitor_pending += 1;
        s.fed += 1;
    })
}

/// A fault-injector step: arm the WAL fail point, as the crash-torture
/// harness does — the next group commit of a non-empty batch fails its
/// fsync.
fn inject_wal_failure() -> Step<TunedModel> {
    Box::new(|s: &mut TunedModel| s.wal_fail_next = true)
}

/// A maintenance step mirroring the real loop: drain the channel, group-
/// commit (fail → poison + drop the batch unapplied + nack every waiter),
/// apply + publish, release durable acks only after both, then run the
/// tuner pass — harvest the monitor and self-enqueue one mined op when the
/// window fills.
fn maintain_tuned() -> Step<TunedModel> {
    Box::new(|s: &mut TunedModel| {
        if s.queue.is_empty() {
            return;
        }
        let batch: Vec<u32> = std::mem::take(&mut s.queue);
        if s.poisoned || s.wal_fail_next {
            if !s.poisoned {
                s.poisoned = true;
                s.ever_poisoned = true;
                s.epochs_at_poison = s.published.len();
            }
            s.wal_fail_next = false;
            for op in batch {
                if op < TUNER_BASE {
                    s.acks.push((op, Err("wal")));
                }
            }
            return;
        }
        s.applied.extend(batch.iter().copied());
        s.published.push(s.applied.clone());
        let epoch = s.published.len() - 1;
        for op in batch {
            if op < TUNER_BASE {
                s.acks.push((op, Ok(epoch)));
            }
        }
        let harvest = std::mem::take(&mut s.monitor_pending);
        s.monitor_harvested += harvest;
        if harvest >= TUNE_WINDOW {
            let op = TUNER_BASE + s.next_tuner_op;
            s.next_tuner_op += 1;
            s.queue.push(op);
            s.enqueued.push(op);
        }
    })
}

/// A **broken** maintenance step that releases acks before the commit
/// decision — the fsyncgate bug durable acks exist to rule out.
fn maintain_ack_before_commit() -> Step<TunedModel> {
    Box::new(|s: &mut TunedModel| {
        if s.queue.is_empty() {
            return;
        }
        let batch: Vec<u32> = std::mem::take(&mut s.queue);
        let optimistic_epoch = s.published.len();
        for op in &batch {
            if *op < TUNER_BASE {
                s.acks.push((*op, Ok(optimistic_epoch)));
            }
        }
        if s.wal_fail_next {
            s.wal_fail_next = false;
            s.poisoned = true;
            s.ever_poisoned = true;
            s.epochs_at_poison = s.published.len();
            return;
        }
        s.applied.extend(batch.iter().copied());
        s.published.push(s.applied.clone());
    })
}

/// A **broken** recovery step that clears the poisoned flag in place — the
/// real server only recovers through restart + WAL replay.
fn unpoison() -> Step<TunedModel> {
    Box::new(|s: &mut TunedModel| s.poisoned = false)
}

/// Epochs form a strictly growing prefix chain that preserves channel
/// order, and the newest epoch equals the maintenance-owned state.
fn tuned_epoch_invariant(s: &TunedModel) -> Result<(), String> {
    for id in 1..s.published.len() {
        let (prev, cur) = (&s.published[id - 1], &s.published[id]);
        if cur.len() <= prev.len() || &cur[..prev.len()] != prev.as_slice() {
            return Err(format!("epoch {id} does not extend epoch {}", id - 1));
        }
    }
    if s.published.last().map(Vec::as_slice) != Some(s.applied.as_slice()) {
        return Err("newest epoch diverged from the maintenance-owned state".to_string());
    }
    // Applied ops appear in channel order (tuner ops included): their
    // positions in the enqueue log are strictly increasing.
    let mut cursor = 0usize;
    for op in &s.applied {
        match s.enqueued[cursor..].iter().position(|e| e == op) {
            Some(at) => cursor += at + 1,
            None => return Err(format!("op {op} applied out of channel order")),
        }
    }
    Ok(())
}

/// Durable-ack soundness: an `Ok(epoch)` means the op is visible in exactly
/// that epoch (no acked op lost), a failed ack's op is never applied, and
/// no op is acked twice.
fn tuned_ack_invariant(s: &TunedModel) -> Result<(), String> {
    for (op, result) in &s.acks {
        match result {
            Ok(epoch) => match s.published.get(*epoch) {
                Some(state) if state.contains(op) => {}
                _ => return Err(format!("acked op {op} lost: not in epoch {epoch}")),
            },
            Err(reason) => {
                if s.applied.contains(op) {
                    return Err(format!("op {op} failed with `{reason}` but was applied"));
                }
            }
        }
    }
    for (i, (op, _)) in s.acks.iter().enumerate() {
        if s.acks[i + 1..].iter().any(|(other, _)| other == op) {
            return Err(format!("op {op} acked twice"));
        }
    }
    Ok(())
}

/// Poisoning is sticky and final: once set it never clears, and no epoch
/// publishes after it.
fn tuned_poison_invariant(s: &TunedModel) -> Result<(), String> {
    if s.ever_poisoned && !s.poisoned {
        return Err("poisoned flag cleared: poisoning must be sticky".to_string());
    }
    if s.poisoned && s.published.len() != s.epochs_at_poison {
        return Err("epoch published after poisoning".to_string());
    }
    Ok(())
}

/// Monitor conservation: every reader feed is either still pending or was
/// harvested exactly once — racy feeds are never lost or double-counted.
fn tuned_monitor_invariant(s: &TunedModel) -> Result<(), String> {
    if s.monitor_pending + s.monitor_harvested == s.fed {
        Ok(())
    } else {
        Err(format!(
            "monitor feeds not conserved: {} pending + {} harvested != {} fed",
            s.monitor_pending, s.monitor_harvested, s.fed
        ))
    }
}

fn tuned_invariants(s: &TunedModel) -> Result<(), String> {
    tuned_epoch_invariant(s)?;
    tuned_ack_invariant(s)?;
    tuned_poison_invariant(s)?;
    tuned_monitor_invariant(s)
}

/// The full tuner-in-the-loop protocol under fault injection: every
/// interleaving of 3 client submits, 2 reader feed steps, an armed WAL
/// fail point, and 3 maintenance drains keeps the durable-ack, sticky-
/// poison, epoch-chain, and monitor-conservation contracts.
#[test]
fn tuned_serve_survives_wal_poisoning_under_all_interleavings() {
    let explored = explore(
        &TunedModel::initial(),
        vec![
            thread("submitter", vec![submit_logged(1), submit_logged(2), submit_logged(3)]),
            thread("reader", vec![read_and_feed(), read_and_feed()]),
            thread("fault", vec![inject_wal_failure()]),
            thread("maintenance", vec![maintain_tuned(), maintain_tuned(), maintain_tuned()]),
        ],
        tuned_invariants,
        |_| Ok(()),
    )
    .unwrap_or_else(|v| panic!("{v}"));
    assert!(explored.interleavings > 1000, "model too small to mean anything");
}

/// With a healthy WAL, tuner self-enqueues interleave with client ops at
/// channel order and nothing is lost: whatever the schedule, the applied
/// prefix plus the still-queued suffix is exactly the enqueue log, and the
/// explorer visits schedules where the tuner actually mined an op.
#[test]
fn tuner_self_enqueue_converges_to_channel_order() {
    let tuner_op_seen = std::cell::Cell::new(false);
    explore(
        &TunedModel::initial(),
        vec![
            thread("submitter", vec![submit_logged(1), submit_logged(2)]),
            thread("reader", vec![read_and_feed(), read_and_feed()]),
            thread(
                "maintenance",
                vec![maintain_tuned(), maintain_tuned(), maintain_tuned(), maintain_tuned()],
            ),
        ],
        tuned_invariants,
        |s| {
            if s.enqueued.iter().any(|&op| op >= TUNER_BASE) {
                tuner_op_seen.set(true);
            }
            let mut serial = s.applied.clone();
            serial.extend(&s.queue);
            if serial == s.enqueued {
                Ok(())
            } else {
                Err(format!(
                    "applied {:?} + queued {:?} diverged from enqueue log {:?}",
                    s.applied, s.queue, s.enqueued
                ))
            }
        },
    )
    .unwrap_or_else(|v| panic!("{v}"));
    assert!(tuner_op_seen.get(), "no schedule ever mined a tuner op: window never filled");
}

/// Teeth check: a maintenance loop that releases acks before the group-
/// commit decision MUST be caught — the explorer has to find the schedule
/// where the fail point is armed and an acked op is dropped.
#[test]
fn ack_before_commit_bug_is_caught_by_the_explorer() {
    let violation = explore(
        &TunedModel::initial(),
        vec![
            thread("submitter", vec![submit_logged(1)]),
            thread("fault", vec![inject_wal_failure()]),
            thread("maintenance", vec![maintain_ack_before_commit()]),
        ],
        tuned_invariants,
        |_| Ok(()),
    )
    .expect_err("releasing acks before the commit decision must be detected");
    assert!(violation.message.contains("lost"), "wrong violation: {violation}");
}

/// Teeth check: clearing the poisoned flag in place MUST be caught — the
/// sticky-poison invariant exists precisely because an in-place recovery
/// would let submits race a WAL in an unknowable state.
#[test]
fn unsticky_poison_bug_is_caught_by_the_explorer() {
    let violation = explore(
        &TunedModel::initial(),
        vec![
            thread("submitter", vec![submit_logged(1)]),
            thread("fault", vec![inject_wal_failure()]),
            thread("maintenance", vec![maintain_tuned(), unpoison()]),
        ],
        tuned_invariants,
        |_| Ok(()),
    )
    .expect_err("clearing the poisoned flag must be detected");
    assert!(violation.message.contains("sticky"), "wrong violation: {violation}");
}
