//! Property tests for the durability layer (ISSUE: robustness): random
//! update streams must make `snapshot + WAL replay` indistinguishable from
//! direct construction, WAL truncation must replay exactly the surviving
//! prefix, recovery must always produce a well-formed index, and bounded
//! evaluation must agree with unbounded evaluation whenever it completes.

use dkindex_core::wal::{self, WalRecord, WalTail};
use dkindex_core::{
    audit_dk, load_with_recovery, read_snapshot, snapshot_bytes, AuditConfig, DkIndex,
    IndexEvaluator, Requirements,
};
use dkindex_datagen::{random_graph, RandomGraphConfig};
use dkindex_graph::{DataGraph, NodeId};
use dkindex_pathexpr::parse;
use proptest::prelude::*;

/// A generated robustness scenario: a connected random graph, a requirement
/// level and a stream of edge updates (arbitrary node pairs).
#[derive(Clone, Debug)]
struct Scenario {
    graph_seed: u64,
    nodes: usize,
    labels: usize,
    reference_edges: usize,
    k: usize,
    updates: Vec<(usize, usize)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        10usize..60,
        2usize..5,
        0usize..8,
        0usize..=3,
        prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..12),
    )
        .prop_map(|(graph_seed, nodes, labels, reference_edges, k, raw)| {
            let updates = raw
                .into_iter()
                .map(|(f, t)| (f.index(nodes + 1), t.index(nodes + 1)))
                .filter(|(f, t)| f != t)
                .collect();
            Scenario {
                graph_seed,
                nodes,
                labels,
                reference_edges,
                k,
                updates,
            }
        })
}

fn build(s: &Scenario) -> (DataGraph, DkIndex) {
    let g = random_graph(&RandomGraphConfig {
        nodes: s.nodes,
        labels: s.labels,
        reference_edges: s.reference_edges,
        max_fanout: 6,
        seed: s.graph_seed,
    });
    let dk = DkIndex::build(&g, Requirements::uniform(s.k));
    (g, dk)
}

/// Wire-format sizes, mirrored from `core::wal` (kept private there): the
/// 8-byte `DKWL` header and the 13-byte add-edge record.
const HEADER_LEN: usize = 8;
const RECORD_LEN: usize = 13;

fn wal_bytes(updates: &[(usize, usize)]) -> Vec<u8> {
    let mut log = wal::encode_header().to_vec();
    for &(f, t) in updates {
        log.extend_from_slice(&wal::encode_record(&WalRecord::AddEdge {
            from: NodeId::from_index(f),
            to: NodeId::from_index(t),
        }));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot + WAL replay reconstructs exactly the state reached by
    /// applying the same update stream directly — byte-identical.
    #[test]
    fn snapshot_plus_replay_equals_direct_construction(s in scenario()) {
        let (mut g_direct, mut dk_direct) = build(&s);
        let snap = snapshot_bytes(&dk_direct, &g_direct);

        for &(f, t) in &s.updates {
            dk_direct.add_edge(&mut g_direct, NodeId::from_index(f), NodeId::from_index(t));
        }

        let (mut dk_replayed, mut g_replayed) =
            read_snapshot(&snap).expect("pristine snapshot must load");
        let report = wal::replay(&mut dk_replayed, &mut g_replayed, &wal_bytes(&s.updates))
            .expect("in-range records must replay");
        prop_assert_eq!(report.applied, s.updates.len());
        prop_assert_eq!(report.tail, WalTail::Clean);
        prop_assert_eq!(
            snapshot_bytes(&dk_replayed, &g_replayed),
            snapshot_bytes(&dk_direct, &g_direct),
            "replayed state diverged from direct construction"
        );
    }

    /// Truncating the WAL anywhere replays exactly the complete-record
    /// prefix; the reached state equals direct application of that prefix.
    #[test]
    fn wal_truncation_replays_the_surviving_prefix(
        s in scenario(),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let (g0, dk0) = build(&s);
        let log = wal_bytes(&s.updates);
        let cut = cut_at.index(log.len() + 1);

        let mut g_replayed = g0.clone();
        let mut dk_replayed = dk0.clone();
        match wal::replay(&mut dk_replayed, &mut g_replayed, &log[..cut]) {
            Ok(report) => {
                prop_assert!(report.applied <= s.updates.len());
                // The surviving prefix is exactly the complete records before
                // the cut; a cut landing on a record boundary (including the
                // bare header and the intact file) is a *clean* tail, never a
                // torn record.
                let payload = cut - HEADER_LEN;
                prop_assert_eq!(report.applied, payload / RECORD_LEN);
                if payload.is_multiple_of(RECORD_LEN) {
                    prop_assert_eq!(
                        report.tail, WalTail::Clean,
                        "boundary cut at {} must be a clean tail", cut
                    );
                } else {
                    let valid_len = HEADER_LEN + (payload / RECORD_LEN) * RECORD_LEN;
                    prop_assert_eq!(report.tail, WalTail::Torn { valid_len });
                }
                let mut g_direct = g0.clone();
                let mut dk_direct = dk0.clone();
                for &(f, t) in &s.updates[..report.applied] {
                    dk_direct.add_edge(&mut g_direct, NodeId::from_index(f), NodeId::from_index(t));
                }
                prop_assert_eq!(
                    snapshot_bytes(&dk_replayed, &g_replayed),
                    snapshot_bytes(&dk_direct, &g_direct),
                    "prefix of {} records diverged", report.applied
                );
            }
            // Cuts inside the 8-byte header are a typed error, never a panic.
            Err(e) => prop_assert!(cut < 8, "unexpected error at cut {}: {}", cut, e),
        }
    }

    /// A truncation landing exactly on a record boundary replays *all* the
    /// surviving records and reports a clean tail — the off-by-one regression
    /// guard for `decode_wal`.
    #[test]
    fn record_boundary_truncation_is_a_clean_tail(
        s in scenario(),
        n_idx in any::<prop::sample::Index>(),
    ) {
        let (g0, dk0) = build(&s);
        let log = wal_bytes(&s.updates);
        let n = n_idx.index(s.updates.len() + 1);
        let cut = HEADER_LEN + n * RECORD_LEN;

        let mut g = g0.clone();
        let mut dk = dk0.clone();
        let report = wal::replay(&mut dk, &mut g, &log[..cut])
            .expect("in-range records must replay");
        prop_assert_eq!(report.applied, n, "boundary cut after {} records", n);
        prop_assert_eq!(report.tail, WalTail::Clean);
    }

    /// A single flipped bit anywhere in a snapshot either yields a typed
    /// error or recovers to an index that passes both the structural
    /// invariant check and the full auditor.
    #[test]
    fn corrupted_snapshots_recover_or_fail_typed(
        s in scenario(),
        at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let (g, dk) = build(&s);
        let mut bytes = snapshot_bytes(&dk, &g);
        let i = at.index(bytes.len());
        bytes[i] ^= 1 << bit;
        if let Ok((rec_dk, rec_g, _)) = load_with_recovery(&bytes) {
            rec_dk.index().check_invariants(&rec_g).expect("recovered index is well-formed");
            let report = audit_dk(&rec_dk, &rec_g, &AuditConfig::default());
            prop_assert!(report.is_sound(), "auditor found corruption:\n{}", report);
        }
    }

    /// Bounded evaluation with an ample budget returns exactly the unbounded
    /// matches; a too-small budget is a typed abort, never a partial answer.
    #[test]
    fn bounded_evaluation_agrees_with_unbounded(s in scenario(), q in 0usize..4) {
        let (g, dk) = build(&s);
        let exprs = ["l0", "l0.l1", "l1.l0.l2", "_*.l1"];
        let expr = parse(exprs[q % exprs.len()]).expect("query parses");

        let full = IndexEvaluator::new(dk.index(), &g).evaluate(&expr);
        let bounded = IndexEvaluator::new(dk.index(), &g)
            .evaluate_bounded(&expr, u64::MAX)
            .expect("unlimited budget cannot abort");
        prop_assert_eq!(&bounded.matches, &full.matches);

        let total = full.cost.index_visits + full.cost.data_visits;
        if total > 0 {
            let aborted = IndexEvaluator::new(dk.index(), &g).evaluate_bounded(&expr, 0);
            prop_assert!(aborted.is_err(), "zero budget must abort a non-trivial query");
        }
    }
}
