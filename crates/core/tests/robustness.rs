//! Property tests for the durability layer (ISSUE: robustness): random
//! update streams must make `snapshot + WAL replay` indistinguishable from
//! direct construction, WAL truncation must replay exactly the surviving
//! prefix, recovery must always produce a well-formed index, and bounded
//! evaluation must agree with unbounded evaluation whenever it completes.

use dkindex_core::wal::{self, WalRecord, WalTail};
use dkindex_core::{
    apply_serial, audit_dk, load_with_recovery, read_snapshot, snapshot_bytes, AuditConfig,
    DkIndex, IndexEvaluator, Requirements, ServeOp,
};
use dkindex_datagen::{random_graph, RandomGraphConfig};
use dkindex_graph::{DataGraph, NodeId};
use dkindex_pathexpr::parse;
use proptest::prelude::*;

/// A generated robustness scenario: a connected random graph, a requirement
/// level and a stream of edge updates (arbitrary node pairs).
#[derive(Clone, Debug)]
struct Scenario {
    graph_seed: u64,
    nodes: usize,
    labels: usize,
    reference_edges: usize,
    k: usize,
    updates: Vec<(usize, usize)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        10usize..60,
        2usize..5,
        0usize..8,
        0usize..=3,
        prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..12),
    )
        .prop_map(|(graph_seed, nodes, labels, reference_edges, k, raw)| {
            let updates = raw
                .into_iter()
                .map(|(f, t)| (f.index(nodes + 1), t.index(nodes + 1)))
                .filter(|(f, t)| f != t)
                .collect();
            Scenario {
                graph_seed,
                nodes,
                labels,
                reference_edges,
                k,
                updates,
            }
        })
}

fn build(s: &Scenario) -> (DataGraph, DkIndex) {
    let g = random_graph(&RandomGraphConfig {
        nodes: s.nodes,
        labels: s.labels,
        reference_edges: s.reference_edges,
        max_fanout: 6,
        seed: s.graph_seed,
    });
    let dk = DkIndex::build(&g, Requirements::uniform(s.k));
    (g, dk)
}

/// Wire-format sizes, mirrored from `core::wal` (kept private there): the
/// 8-byte `DKWL` header and the 13-byte v1 add-edge record.
const HEADER_LEN: usize = 8;
const RECORD_LEN: usize = 13;

/// A legacy v1 log: fixed 13-byte add-edge records, no commit fences.
fn wal_bytes(updates: &[(usize, usize)]) -> Vec<u8> {
    let mut log = wal::encode_header_v1().to_vec();
    for &(f, t) in updates {
        let rec = wal::encode_record_v1(&WalRecord::AddEdge {
            from: NodeId::from_index(f),
            to: NodeId::from_index(t),
        })
        .expect("add-edge encodes in v1");
        log.extend_from_slice(&rec);
    }
    log
}

/// Derive a mixed v2 op stream from the scenario's update pairs: edge
/// additions interleaved with promote / demote / set-requirements
/// maintenance ops, all in-range for the scenario graph.
fn mixed_ops(s: &Scenario) -> Vec<WalRecord> {
    let mut records = Vec::new();
    for (i, &(f, t)) in s.updates.iter().enumerate() {
        records.push(WalRecord::AddEdge {
            from: NodeId::from_index(f),
            to: NodeId::from_index(t),
        });
        match i % 4 {
            0 => records.push(WalRecord::Promote {
                node: NodeId::from_index(f),
                k: (s.k + i) % 4,
            }),
            1 => records.push(WalRecord::Demote(Requirements::uniform(s.k))),
            2 => records.push(WalRecord::SetRequirements(Requirements::from_pairs([
                ("l0", (i + 1) % 4),
                ("l1", s.k),
            ]))),
            _ => records.push(WalRecord::PromoteToRequirements),
        }
    }
    records
}

/// A v2 log with one commit fence per record (the append-per-record shape),
/// plus the byte offset where each record's fence ends.
fn v2_wal_bytes(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut log = wal::encode_header().to_vec();
    let mut fence_ends = Vec::with_capacity(records.len());
    for r in records {
        log.extend_from_slice(&wal::encode_record(r));
        log.extend_from_slice(&wal::encode_commit(1));
        fence_ends.push(log.len());
    }
    (log, fence_ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot + WAL replay reconstructs exactly the state reached by
    /// applying the same update stream directly — byte-identical.
    #[test]
    fn snapshot_plus_replay_equals_direct_construction(s in scenario()) {
        let (mut g_direct, mut dk_direct) = build(&s);
        let snap = snapshot_bytes(&dk_direct, &g_direct);

        for &(f, t) in &s.updates {
            dk_direct.add_edge(&mut g_direct, NodeId::from_index(f), NodeId::from_index(t));
        }

        let (mut dk_replayed, mut g_replayed) =
            read_snapshot(&snap).expect("pristine snapshot must load");
        let report = wal::replay(&mut dk_replayed, &mut g_replayed, &wal_bytes(&s.updates))
            .expect("in-range records must replay");
        prop_assert_eq!(report.applied, s.updates.len());
        prop_assert_eq!(report.tail, WalTail::Clean);
        prop_assert_eq!(
            snapshot_bytes(&dk_replayed, &g_replayed),
            snapshot_bytes(&dk_direct, &g_direct),
            "replayed state diverged from direct construction"
        );
    }

    /// Truncating the WAL anywhere replays exactly the complete-record
    /// prefix; the reached state equals direct application of that prefix.
    #[test]
    fn wal_truncation_replays_the_surviving_prefix(
        s in scenario(),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let (g0, dk0) = build(&s);
        let log = wal_bytes(&s.updates);
        let cut = cut_at.index(log.len() + 1);

        let mut g_replayed = g0.clone();
        let mut dk_replayed = dk0.clone();
        match wal::replay(&mut dk_replayed, &mut g_replayed, &log[..cut]) {
            Ok(report) => {
                prop_assert!(report.applied <= s.updates.len());
                // The surviving prefix is exactly the complete records before
                // the cut; a cut landing on a record boundary (including the
                // bare header and the intact file) is a *clean* tail, never a
                // torn record.
                let payload = cut - HEADER_LEN;
                prop_assert_eq!(report.applied, payload / RECORD_LEN);
                if payload.is_multiple_of(RECORD_LEN) {
                    prop_assert_eq!(
                        report.tail, WalTail::Clean,
                        "boundary cut at {} must be a clean tail", cut
                    );
                } else {
                    let valid_len = HEADER_LEN + (payload / RECORD_LEN) * RECORD_LEN;
                    prop_assert_eq!(report.tail, WalTail::Torn { valid_len });
                }
                let mut g_direct = g0.clone();
                let mut dk_direct = dk0.clone();
                for &(f, t) in &s.updates[..report.applied] {
                    dk_direct.add_edge(&mut g_direct, NodeId::from_index(f), NodeId::from_index(t));
                }
                prop_assert_eq!(
                    snapshot_bytes(&dk_replayed, &g_replayed),
                    snapshot_bytes(&dk_direct, &g_direct),
                    "prefix of {} records diverged", report.applied
                );
            }
            // Cuts inside the 8-byte header are a typed error, never a panic.
            Err(e) => prop_assert!(cut < 8, "unexpected error at cut {}: {}", cut, e),
        }
    }

    /// A truncation landing exactly on a record boundary replays *all* the
    /// surviving records and reports a clean tail — the off-by-one regression
    /// guard for `decode_wal`.
    #[test]
    fn record_boundary_truncation_is_a_clean_tail(
        s in scenario(),
        n_idx in any::<prop::sample::Index>(),
    ) {
        let (g0, dk0) = build(&s);
        let log = wal_bytes(&s.updates);
        let n = n_idx.index(s.updates.len() + 1);
        let cut = HEADER_LEN + n * RECORD_LEN;

        let mut g = g0.clone();
        let mut dk = dk0.clone();
        let report = wal::replay(&mut dk, &mut g, &log[..cut])
            .expect("in-range records must replay");
        prop_assert_eq!(report.applied, n, "boundary cut after {} records", n);
        prop_assert_eq!(report.tail, WalTail::Clean);
    }

    /// Cutting a v2 WAL at *any* byte replays exactly the fence-covered
    /// record prefix, the recovered index passes the full auditor, and the
    /// state is byte-identical to serially applying that prefix — the
    /// acknowledged-prefix contract at the decode level, over the whole
    /// ServeOp vocabulary.
    #[test]
    fn v2_any_prefix_replays_audit_sound(
        s in scenario(),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let (g0, dk0) = build(&s);
        let records = mixed_ops(&s);
        let (log, fence_ends) = v2_wal_bytes(&records);
        let cut = cut_at.index(log.len() + 1);

        let mut g_replayed = g0.clone();
        let mut dk_replayed = dk0.clone();
        match wal::replay(&mut dk_replayed, &mut g_replayed, &log[..cut]) {
            Ok(report) => {
                // Committed records are exactly those whose fence made it
                // under the cut; everything past the last fence is dropped.
                let expected = fence_ends.iter().filter(|&&e| e <= cut).count();
                prop_assert_eq!(report.applied, expected, "cut at {}", cut);
                let boundary = cut == HEADER_LEN || fence_ends.contains(&cut);
                prop_assert_eq!(
                    matches!(report.tail, WalTail::Clean), boundary,
                    "cut at {} boundary={}", cut, boundary
                );

                let ops: Vec<ServeOp> = records[..expected].iter().map(|r| r.to_op()).collect();
                let mut g_direct = g0.clone();
                let mut dk_direct = dk0.clone();
                apply_serial(&mut dk_direct, &mut g_direct, &ops);
                prop_assert_eq!(
                    snapshot_bytes(&dk_replayed, &g_replayed),
                    snapshot_bytes(&dk_direct, &g_direct),
                    "replayed v2 prefix of {} records diverged", expected
                );
                dk_replayed.index().check_invariants(&g_replayed)
                    .expect("replayed index is well-formed");
                let audit = audit_dk(&dk_replayed, &g_replayed, &AuditConfig::default());
                prop_assert!(audit.is_sound(), "auditor found corruption:\n{}", audit);
            }
            // Cuts inside the 8-byte header are a typed error, never a panic.
            Err(e) => prop_assert!(cut < HEADER_LEN, "unexpected error at cut {}: {}", cut, e),
        }
    }

    /// A single flipped bit anywhere in a snapshot either yields a typed
    /// error or recovers to an index that passes both the structural
    /// invariant check and the full auditor.
    #[test]
    fn corrupted_snapshots_recover_or_fail_typed(
        s in scenario(),
        at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let (g, dk) = build(&s);
        let mut bytes = snapshot_bytes(&dk, &g);
        let i = at.index(bytes.len());
        bytes[i] ^= 1 << bit;
        if let Ok((rec_dk, rec_g, _)) = load_with_recovery(&bytes) {
            rec_dk.index().check_invariants(&rec_g).expect("recovered index is well-formed");
            let report = audit_dk(&rec_dk, &rec_g, &AuditConfig::default());
            prop_assert!(report.is_sound(), "auditor found corruption:\n{}", report);
        }
    }

    /// Bounded evaluation with an ample budget returns exactly the unbounded
    /// matches; a too-small budget is a typed abort, never a partial answer.
    #[test]
    fn bounded_evaluation_agrees_with_unbounded(s in scenario(), q in 0usize..4) {
        let (g, dk) = build(&s);
        let exprs = ["l0", "l0.l1", "l1.l0.l2", "_*.l1"];
        let expr = parse(exprs[q % exprs.len()]).expect("query parses");

        let full = IndexEvaluator::new(dk.index(), &g).evaluate(&expr);
        let bounded = IndexEvaluator::new(dk.index(), &g)
            .evaluate_bounded(&expr, u64::MAX)
            .expect("unlimited budget cannot abort");
        prop_assert_eq!(&bounded.matches, &full.matches);

        let total = full.cost.index_visits + full.cost.data_visits;
        if total > 0 {
            let aborted = IndexEvaluator::new(dk.index(), &g).evaluate_bounded(&expr, 0);
            prop_assert!(aborted.is_err(), "zero budget must abort a non-trivial query");
        }
    }
}

/// v1→v2 compatibility, pinned at the byte level: a v1 stream written by the
/// previous format (literal golden bytes, CRCs included) must decode in this
/// build, replay identically to the equivalent v2 stream, and a `WalWriter`
/// reopening it must keep appending in v1 — so pre-upgrade logs stay usable
/// without a rewrite.
#[test]
fn v1_golden_bytes_decode_and_replay_identically_to_v2() {
    // b"DKWL" v1 header, then AddEdge{3→1} and AddEdge{0→2} as written by
    // the v1 encoder (13-byte records, trailing IEEE CRC-32 of the first 9).
    const GOLDEN_V1: [u8; 34] = [
        0x44, 0x4b, 0x57, 0x4c, 0x01, 0x00, 0x00, 0x00, // header
        0x01, 0x03, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x6b, 0x60, 0x41, 0xc7,
        0x01, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x66, 0xc8, 0x7b, 0x5b,
    ];
    // The same stream as today's encoder emits it — byte-for-byte.
    let mut reencoded = wal::encode_header_v1().to_vec();
    let records = [
        WalRecord::AddEdge { from: NodeId::from_index(3), to: NodeId::from_index(1) },
        WalRecord::AddEdge { from: NodeId::from_index(0), to: NodeId::from_index(2) },
    ];
    for r in &records {
        reencoded.extend_from_slice(&wal::encode_record_v1(r).expect("v1 add-edge"));
    }
    assert_eq!(reencoded, GOLDEN_V1, "v1 wire format drifted");

    let (decoded, tail) = wal::decode_wal(&GOLDEN_V1).expect("golden v1 stream decodes");
    assert_eq!(decoded, records);
    assert_eq!(tail, WalTail::Clean);

    // Replaying the v1 golden stream and the equivalent v2 stream must land
    // on byte-identical states.
    let s = Scenario {
        graph_seed: 7,
        nodes: 12,
        labels: 3,
        reference_edges: 2,
        k: 2,
        updates: vec![],
    };
    let (g0, dk0) = build(&s);
    let (mut g_v1, mut dk_v1) = (g0.clone(), dk0.clone());
    wal::replay(&mut dk_v1, &mut g_v1, &GOLDEN_V1).expect("v1 replay");

    let (v2_log, _) = v2_wal_bytes(&records);
    let (mut g_v2, mut dk_v2) = (g0, dk0);
    wal::replay(&mut dk_v2, &mut g_v2, &v2_log).expect("v2 replay");
    assert_eq!(
        snapshot_bytes(&dk_v1, &g_v1),
        snapshot_bytes(&dk_v2, &g_v2),
        "v1 and v2 encodings of the same stream must replay identically"
    );
}
