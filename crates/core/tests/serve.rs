//! Integration tests for the concurrent serving layer (`core::serve`):
//!
//! * sharded construction is byte-identical to the `dk_partition_reference`
//!   oracle on the XMark-like and NASA-like generators for every thread
//!   count (and actually exercises the engine's parallel path);
//! * an N-thread serve run ends in exactly the state of a serial run over
//!   the same op sequence — final snapshot bytes and all;
//! * an interleaving stress run: readers race small-batch publishes and
//!   every answer must be exact against the epoch it was computed on.

use dkindex_core::dk::{dk_partition_reference, dk_partition_with_engine};
use dkindex_core::serve::{apply_serial, DkServer, ServeConfig, ServeOp};
use dkindex_core::{evaluate_on_data, snapshot_bytes, DkIndex, Requirements};
use dkindex_datagen::{
    nasa_graph, random_graph, xmark_graph, NasaConfig, RandomGraphConfig, XmarkConfig,
};
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_partition::RefineEngine;
use dkindex_pathexpr::parse;
use dkindex_workload::generate_update_edges;

/// The engine only fans out above its internal threshold; byte-identity on
/// smaller graphs would not exercise the parallel merge at all.
const ENGINE_PARALLEL_THRESHOLD: usize = 4096;

fn assert_sharded_identical(g: &DataGraph, reqs: &Requirements, dataset: &str) {
    assert!(
        g.node_count() >= ENGINE_PARALLEL_THRESHOLD,
        "{dataset}: {} nodes do not reach the engine's parallel threshold",
        g.node_count()
    );
    let (ref_partition, ref_sims) = dk_partition_reference(g, reqs, true);
    for threads in [1, 2, 4, 8] {
        let mut engine = RefineEngine::with_threads(threads);
        let (p, sims) = dk_partition_with_engine(g, reqs, true, &mut engine);
        assert_eq!(p, ref_partition, "{dataset}: partition diverged at {threads} threads");
        assert_eq!(sims, ref_sims, "{dataset}: similarities diverged at {threads} threads");
    }
    // End to end: the sharded build serializes byte-identically too.
    let serial = DkIndex::build(g, reqs.clone());
    for threads in [2, 8] {
        let sharded = DkIndex::build_sharded(g, reqs.clone(), threads);
        assert_eq!(
            snapshot_bytes(&sharded, g),
            snapshot_bytes(&serial, g),
            "{dataset}: sharded build bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn sharded_construction_matches_reference_on_xmark() {
    let g = xmark_graph(&XmarkConfig::scale(0.02));
    let reqs = Requirements::from_pairs([("item", 2), ("person", 1), ("keyword", 3)]);
    assert_sharded_identical(&g, &reqs, "xmark");
}

#[test]
fn sharded_construction_matches_reference_on_nasa() {
    let g = nasa_graph(&NasaConfig::scale(0.15));
    let reqs = Requirements::from_pairs([("dataset", 1), ("author", 2), ("title", 2)]);
    assert_sharded_identical(&g, &reqs, "nasa");
}

/// A compact random graph plus a deterministic mixed op sequence: edge
/// updates from the workload generator interleaved with promote / tune /
/// demote actions.
fn serve_fixture() -> (DataGraph, DkIndex, Vec<ServeOp>) {
    let g = random_graph(&RandomGraphConfig {
        nodes: 220,
        labels: 5,
        reference_edges: 24,
        max_fanout: 6,
        seed: 0xD5EE,
    });
    let dk = DkIndex::build(&g, Requirements::uniform(2));
    let mut ops: Vec<ServeOp> = Vec::new();
    let edges = generate_update_edges(&g, 24, 7);
    for (i, (from, to)) in edges.into_iter().enumerate() {
        ops.push(ServeOp::AddEdge { from, to });
        match i {
            5 => ops.push(ServeOp::Promote {
                node: NodeId::from_index(3),
                k: 2,
            }),
            11 => ops.push(ServeOp::PromoteToRequirements),
            15 => ops.push(ServeOp::Demote(Requirements::uniform(1))),
            19 => ops.push(ServeOp::SetRequirements(Requirements::uniform(2))),
            _ => {}
        }
    }
    (g, dk, ops)
}

/// Determinism: submitting the op sequence through the server — while
/// reader threads hammer queries — ends byte-identical to applying the same
/// sequence serially, for every batch size and reader count tried.
#[test]
fn threaded_serve_matches_serial_application() {
    let (g, dk, ops) = serve_fixture();

    let mut serial_dk = dk.clone();
    let mut serial_g = g.clone();
    apply_serial(&mut serial_dk, &mut serial_g, &ops);
    let expected = snapshot_bytes(&serial_dk, &serial_g);

    let queries = ["l0", "l1.l2", "_*.l3", "l0.l1"];
    for (readers, max_batch) in [(2usize, 1usize), (4, 4), (4, 64)] {
        let server = DkServer::start(
            g.clone(),
            dk.clone(),
            ServeConfig {
                max_batch,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        std::thread::scope(|s| {
            for r in 0..readers {
                let handle = server.handle();
                let queries = &queries;
                s.spawn(move || {
                    for round in 0..30 {
                        let q = parse(queries[(r + round) % queries.len()]).unwrap();
                        let _ = handle.evaluate(&q);
                    }
                });
            }
            for op in &ops {
                server.submit(op.clone()).unwrap();
            }
            let drained_epoch = server.flush().unwrap();
            assert!(drained_epoch >= 1, "ops must have published at least one epoch");
        });
        let (final_dk, final_g) = server.shutdown().unwrap();
        assert_eq!(
            snapshot_bytes(&final_dk, &final_g),
            expected,
            "serve with {readers} readers / batch {max_batch} diverged from serial run"
        );
    }
}

/// Interleaving stress: publishes race reads (batch size 1 → one publish per
/// op) and every reader answer must be exact with respect to the epoch the
/// reader grabbed — staleness is allowed, wrongness is not. Epoch ids must
/// be monotone from each reader's point of view.
#[test]
fn racing_readers_always_see_a_consistent_epoch() {
    let (g, dk, ops) = serve_fixture();
    let server = DkServer::start(
        g,
        dk,
        ServeConfig {
            max_batch: 1,
            threads: 1,
            ..ServeConfig::default()
        },
    );
    let queries = ["l0", "l1.l2", "_*.l3", "l2"];

    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for r in 0..4usize {
            let handle = server.handle();
            let queries = &queries;
            workers.push(s.spawn(move || {
                let mut last_epoch = 0u64;
                let mut checked = 0usize;
                for round in 0..60 {
                    let epoch = handle.epoch();
                    assert!(
                        epoch.id() >= last_epoch,
                        "epoch ids went backwards: {} after {}",
                        epoch.id(),
                        last_epoch
                    );
                    last_epoch = epoch.id();
                    let q = parse(queries[(r + round) % queries.len()]).unwrap();
                    let out = epoch.evaluate(&q);
                    // Exactness against the *same* epoch's data graph: the
                    // serving layer may hand out a superseded epoch, never
                    // an inconsistent one.
                    let truth = evaluate_on_data(epoch.data(), &q).0;
                    assert_eq!(out.matches, truth, "reader {r} round {round}");
                    checked += 1;
                }
                checked
            }));
        }
        // Feed updates while the readers run, one publish per op.
        for op in &ops {
            server.submit(op.clone()).unwrap();
        }
        let checks: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(checks, 4 * 60);
    });

    let final_epoch = server.flush().unwrap();
    assert_eq!(final_epoch as usize, ops.len(), "batch size 1 publishes once per op");
    let (final_dk, final_g) = server.shutdown().unwrap();
    final_dk.index().check_invariants(&final_g).unwrap();
}

/// The per-epoch memo returns the identical outcome for a repeated query and
/// is dropped wholesale on publish (fresh epoch → fresh memo), so an update
/// can never leak a stale cached answer.
#[test]
fn epoch_memo_is_dropped_on_publish() {
    let (g, dk, _) = serve_fixture();
    let server = DkServer::start(
        g,
        dk,
        ServeConfig {
            max_batch: 1,
            threads: 1,
            ..ServeConfig::default()
        },
    );
    let q = parse("l1.l2").unwrap();

    let e0 = server.handle().epoch();
    let first = e0.evaluate(&q);
    let memoized = e0.evaluate(&q);
    assert_eq!(first, memoized, "same epoch must replay the memoized outcome");

    // A structural update that changes the answer of `q` on the new epoch.
    let l1 = evaluate_on_data(e0.data(), &parse("l1").unwrap()).0;
    let l2 = evaluate_on_data(e0.data(), &parse("ROOT.l2").unwrap()).0;
    let (from, to) = (l1[0], l2[0]);
    server.submit(ServeOp::AddEdge { from, to }).unwrap();
    server.flush().unwrap();

    let e1 = server.handle().epoch();
    assert!(e1.id() > e0.id());
    // The old epoch still answers from its own (consistent) world...
    assert_eq!(e0.evaluate(&q), first);
    // ...while the new epoch evaluates fresh against the updated graph.
    assert_eq!(e1.evaluate(&q).matches, evaluate_on_data(e1.data(), &q).0);
    let (final_dk, final_g) = server.shutdown().unwrap();
    final_dk.index().check_invariants(&final_g).unwrap();
}

/// Regression for the typed serve-error surface (was: panics): after the
/// maintenance thread exits, `submit`/`flush` return
/// `ServeError::MaintenanceGone` and `shutdown` still hands back the final
/// state the thread produced before exiting — no unwraps anywhere.
#[test]
fn dead_maintenance_thread_surfaces_typed_errors() {
    use dkindex_core::ServeError;

    let mut g = DataGraph::new();
    let a = g.add_labeled_node("a");
    let r = g.root();
    g.add_edge(r, a, dkindex_graph::EdgeKind::Tree);
    let dk = DkIndex::build(&g, Requirements::uniform(1));
    let server = DkServer::start(g, dk, ServeConfig::default());

    server.stop_maintenance_for_tests();
    // The maintenance thread drains the stop message asynchronously; the
    // typed error must appear once it is gone, within a bounded wait.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match server.submit(ServeOp::PromoteToRequirements) {
            Err(ServeError::MaintenanceGone) => break,
            Err(other) => panic!("unexpected serve error: {other:?}"),
            Ok(()) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "maintenance thread never exited"
                );
                std::thread::yield_now();
            }
        }
    }
    assert_eq!(server.flush(), Err(ServeError::MaintenanceGone));
    // Readers keep answering from the last published epoch.
    let epoch = server.handle().epoch();
    assert_eq!(epoch.id(), 0);
    // Shutdown still reclaims the state the thread returned on exit.
    let (final_dk, final_g) = server.shutdown().expect("thread exited cleanly, not by panic");
    final_dk.index().check_invariants(&final_g).unwrap();
}

// ---- WAL-poisoning contract (regressions) --------------------------------

/// Regression: `flush()` used to ack `Ok(epoch_id)` even after a failed
/// group commit had poisoned the server and dropped batches unapplied —
/// violating its "every previously submitted op has been applied" contract.
/// With the first group commit failing, a flush after the doomed submit must
/// surface `WalFailed`, not pretend the drain succeeded.
#[test]
fn poisoned_server_fails_flush_with_typed_error() {
    use dkindex_core::wal::WalWriter;
    use dkindex_core::{FailPlan, ServeError, SharedDisk};

    let (g, dk, ops) = serve_fixture();
    // Sync 0 is the WAL header; sync 1 — the first group commit — fails.
    let disk = SharedDisk::new(FailPlan {
        fail_sync_at: Some(1),
        torn_write_at: None,
    });
    let writer = WalWriter::with_store(disk.clone()).expect("header sync is sync 0");
    let server = DkServer::start_logged(
        g,
        dk,
        ServeConfig {
            max_batch: 4,
            threads: 1,
            ..ServeConfig::default()
        },
        Box::new(writer),
    );

    // Accepted (the server is not yet poisoned), then dropped when the
    // batch's group commit fails.
    server.submit(ops[0].clone()).unwrap();
    assert_eq!(server.flush(), Err(ServeError::WalFailed));
    // Poisoning is sticky: the fsyncgate rule forbids retrying, so every
    // later flush keeps reporting the loss.
    assert_eq!(server.flush(), Err(ServeError::WalFailed));
    let (final_dk, final_g) = server.shutdown().unwrap();
    final_dk.index().check_invariants(&final_g).unwrap();
}

/// Regression: plain `submit()` ops accepted after WAL poisoning vanished
/// silently — they queued, were dropped with their batch, and nothing told
/// the un-acked submitter. Now the poisoned flag is shared: `submit`,
/// `submit_logged`, and every `Submitter` clone fast-fail with `WalFailed`,
/// and the recovered log holds exactly the committed prefix.
#[test]
fn poisoned_server_fast_fails_submits_and_recovers_committed_prefix() {
    use dkindex_core::wal::{self, WalWriter};
    use dkindex_core::{FailPlan, ServeError, SharedDisk};

    let (g, dk, ops) = serve_fixture();
    // Sync 0: header. Sync 1: first group commit succeeds. Sync 2: second
    // group commit fails, poisoning the server.
    let disk = SharedDisk::new(FailPlan {
        fail_sync_at: Some(2),
        torn_write_at: None,
    });
    let writer = WalWriter::with_store(disk.clone()).expect("header sync is sync 0");
    let server = DkServer::start_logged(
        g.clone(),
        dk.clone(),
        ServeConfig {
            max_batch: 1,
            threads: 1,
            ..ServeConfig::default()
        },
        Box::new(writer),
    );
    let submitter = server.submitter();

    // Batch 1 commits durably.
    let epoch = server
        .submit_logged(ops[0].clone())
        .unwrap()
        .wait()
        .expect("first group commit succeeds");
    assert_eq!(epoch, 1);
    // Batch 2 hits the failed fsync; waiting for its ack observes the
    // poisoning synchronously.
    assert_eq!(
        server.submit_logged(ops[1].clone()).unwrap().wait(),
        Err(ServeError::WalFailed)
    );

    // Every submission path now fast-fails instead of enqueueing doomed ops.
    assert_eq!(server.submit(ops[2].clone()), Err(ServeError::WalFailed));
    assert!(matches!(
        server.submit_logged(ops[2].clone()),
        Err(ServeError::WalFailed)
    ));
    assert_eq!(submitter.submit(ops[2].clone()), Err(ServeError::WalFailed));
    assert!(matches!(
        submitter.submit_logged(ops[2].clone()),
        Err(ServeError::WalFailed)
    ));
    assert_eq!(server.flush(), Err(ServeError::WalFailed));

    let (final_dk, final_g) = server.shutdown().unwrap();

    // The recovered log holds exactly the one committed op, and replaying
    // that prefix reproduces the final in-memory state byte for byte.
    let durable = disk.view(|d| d.crash_view(0));
    let (records, _tail) = wal::decode_wal(&durable).unwrap();
    assert_eq!(
        records.len(),
        1,
        "only the first batch's op reached stable storage"
    );
    let mut replay_dk = dk.clone();
    let mut replay_g = g.clone();
    wal::replay(&mut replay_dk, &mut replay_g, &durable).unwrap();
    assert_eq!(
        snapshot_bytes(&replay_dk, &replay_g),
        snapshot_bytes(&final_dk, &final_g),
        "in-memory state must equal the replay of the committed WAL prefix"
    );
}

// ---- live tuning in the serve loop ---------------------------------------

/// Build a fixture whose query load is deep enough to out-require the
/// built index (uniform 1), so a harvested window plans a promotion.
fn tuning_fixture() -> (DataGraph, DkIndex) {
    let g = random_graph(&RandomGraphConfig {
        nodes: 220,
        labels: 5,
        reference_edges: 24,
        max_fanout: 6,
        seed: 0xD5EE,
    });
    let dk = DkIndex::build(&g, Requirements::uniform(1));
    (g, dk)
}

/// Single-threaded live tuning, end to end: readers feed the monitor, the
/// maintenance thread harvests on cadence and self-enqueues a promotion,
/// the recorded op sequence replays byte-identically, and the tuned index
/// answers the deep query soundly (no validation) afterwards.
#[test]
fn live_tuning_promotes_under_deep_load_and_replays_serially() {
    let (g, dk) = tuning_fixture();
    let server = DkServer::start(
        g.clone(),
        dk.clone(),
        ServeConfig {
            max_batch: 4,
            tune_interval: 1,
            tune_window: 4,
            tune_min_support: 2,
            record_ops: true,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let deep = parse("l0.l1.l2.l3").unwrap();
    for _ in 0..8 {
        let _ = handle.evaluate(&deep);
    }

    // One update publishes a batch; the tuning pass rides the publish and
    // self-enqueues its op, which the second flush then drains.
    let edges = generate_update_edges(&g, 1, 7);
    let (from, to) = edges[0];
    server.submit(ServeOp::AddEdge { from, to }).unwrap();
    server.flush().unwrap();
    server.flush().unwrap();

    let stats = handle.tuning_stats().expect("tuning is enabled");
    assert!(stats.windows >= 1, "the 8-query window must have harvested");
    assert!(stats.promotions >= 1, "deep load must plan a promotion");

    let recorded = server.recorded_ops().expect("record_ops is on");
    assert!(
        recorded
            .iter()
            .any(|op| matches!(op, ServeOp::SetRequirements(_))),
        "the tuner's promotion must appear in the recorded op sequence"
    );
    let (final_dk, final_g) = server.shutdown().unwrap();
    assert!(
        final_dk.requirements().get("l3") >= 3,
        "length-4 queries ending in l3 must have raised its requirement"
    );

    // Serial-replay oracle over the *recorded* sequence (client ops and
    // tuning ops at their actual interleaved positions).
    let mut serial_dk = dk.clone();
    let mut serial_g = g.clone();
    apply_serial(&mut serial_dk, &mut serial_g, &recorded);
    assert_eq!(
        snapshot_bytes(&final_dk, &final_g),
        snapshot_bytes(&serial_dk, &serial_g),
        "live-tuned serve diverged from serial replay of its recorded ops"
    );
}

/// N reader threads race the tuning maintenance loop; whatever interleaving
/// the run took, replaying its recorded op sequence serially must land on
/// the same snapshot bytes — the determinism oracle holds with live tuning
/// in the loop.
#[test]
fn threaded_live_tuning_matches_serial_replay_of_recorded_ops() {
    let (g, dk) = tuning_fixture();
    for readers in [2usize, 4] {
        let server = DkServer::start(
            g.clone(),
            dk.clone(),
            ServeConfig {
                max_batch: 2,
                tune_interval: 1,
                tune_window: 4,
                tune_min_support: 2,
                record_ops: true,
                ..ServeConfig::default()
            },
        );
        let edges = generate_update_edges(&g, 6, 11);
        std::thread::scope(|s| {
            for r in 0..readers {
                let handle = server.handle();
                s.spawn(move || {
                    let queries = ["l0.l1.l2.l3", "l1.l2.l3", "l0.l1"];
                    for round in 0..40 {
                        let q = parse(queries[(r + round) % queries.len()]).unwrap();
                        let _ = handle.evaluate(&q);
                    }
                });
            }
            for &(from, to) in &edges {
                server.submit(ServeOp::AddEdge { from, to }).unwrap();
                server.flush().unwrap();
            }
        });
        // Drain any tuning op the last publish enqueued.
        server.flush().unwrap();
        let recorded = server.recorded_ops().expect("record_ops is on");
        let (final_dk, final_g) = server.shutdown().unwrap();

        let mut serial_dk = dk.clone();
        let mut serial_g = g.clone();
        apply_serial(&mut serial_dk, &mut serial_g, &recorded);
        assert_eq!(
            snapshot_bytes(&final_dk, &final_g),
            snapshot_bytes(&serial_dk, &serial_g),
            "{readers}-reader live-tuned serve diverged from its recorded-op replay"
        );
    }
}

/// Live tuning composes with the WAL: tuning ops group-commit like client
/// ops, and replaying the log over the initial state reproduces the final
/// served state byte for byte.
#[test]
fn live_tuning_ops_are_wal_logged_and_recoverable() {
    use dkindex_core::wal::{self, WalWriter};
    use dkindex_core::{FailPlan, SharedDisk};

    let (g, dk) = tuning_fixture();
    let disk = SharedDisk::new(FailPlan::none());
    let writer = WalWriter::with_store(disk.clone()).unwrap();
    let server = DkServer::start_logged(
        g.clone(),
        dk.clone(),
        ServeConfig {
            max_batch: 4,
            tune_interval: 1,
            tune_window: 4,
            tune_min_support: 2,
            ..ServeConfig::default()
        },
        Box::new(writer),
    );
    let handle = server.handle();
    let deep = parse("l0.l1.l2.l3").unwrap();
    for _ in 0..8 {
        let _ = handle.evaluate(&deep);
    }
    let edges = generate_update_edges(&g, 1, 7);
    let (from, to) = edges[0];
    server
        .submit_logged(ServeOp::AddEdge { from, to })
        .unwrap()
        .wait()
        .unwrap();
    server.flush().unwrap();
    server.flush().unwrap();
    let stats = handle.tuning_stats().expect("tuning is enabled");
    assert!(stats.promotions >= 1, "deep load must plan a promotion");
    let (final_dk, final_g) = server.shutdown().unwrap();

    let durable = disk.view(|d| d.crash_view(0));
    let (records, _tail) = wal::decode_wal(&durable).unwrap();
    assert!(
        records.len() >= 2,
        "log must hold the edge update and the tuning op"
    );
    let mut replay_dk = dk.clone();
    let mut replay_g = g.clone();
    wal::replay(&mut replay_dk, &mut replay_g, &durable).unwrap();
    assert_eq!(
        snapshot_bytes(&replay_dk, &replay_g),
        snapshot_bytes(&final_dk, &final_g),
        "WAL replay must reproduce the live-tuned final state"
    );
}
