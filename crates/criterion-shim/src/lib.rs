//! # dkindex-criterion
//!
//! A tiny wall-clock benchmark harness exposing the subset of the `criterion`
//! API this workspace's `benches/` files use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The workspace builds in fully offline environments, so the external
//! `criterion` dev-dependency is replaced by this crate via Cargo dependency
//! renaming — bench files keep `use criterion::{...}` unchanged.
//!
//! Measurement model: each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and reports min / median / mean per-iteration times to
//! stdout. No statistical regression analysis, plots, or baselines — this is
//! a smoke harness so `cargo bench` works without network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("ak", k)` → label `ak/k`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh untimed `setup` product per iteration.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(full_name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up + calibration: find an iteration count taking >= ~5ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..sample_size.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{full_name:<40} min {:>10} median {:>10} mean {:>10} ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        per_iter.len(),
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Run a benchmark identified by a [`BenchmarkId`], passing `input`
    /// through to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, f);
        self
    }
}

/// Prevent the optimiser from eliding a value, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn iter_with_setup_pairs_setup_and_routine() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        b.iter_with_setup(
            || {
                setups += 1;
                setups
            },
            |x| {
                runs += x;
            },
        );
        assert_eq!(setups, 3);
        assert_eq!(runs, 1 + 2 + 3);
    }

    #[test]
    fn benchmark_id_formats_label() {
        let id = BenchmarkId::new("ak", 3);
        assert_eq!(id.label, "ak/3");
    }
}
