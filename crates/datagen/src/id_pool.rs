//! Id spaces for generated documents: dense `prefixN` identifiers with
//! uniform random sampling, shared by the XMark-like and NASA-like
//! generators.

use rand::Rng;

/// A space of `count` identifiers `prefix0 .. prefix{count-1}`.
#[derive(Clone, Debug)]
pub struct IdPool {
    prefix: &'static str,
    count: usize,
}

impl IdPool {
    /// Create a pool of `count` ids with the given prefix.
    pub fn new(prefix: &'static str, count: usize) -> Self {
        IdPool { prefix, count }
    }

    /// The `i`-th identifier.
    pub fn id(&self, i: usize) -> String {
        debug_assert!(i < self.count);
        Self::format(self.prefix, i)
    }

    /// Format an identifier without a pool.
    pub fn format(prefix: &str, i: usize) -> String {
        format!("{prefix}{i}")
    }

    /// A uniformly random identifier from the pool.
    ///
    /// # Panics
    /// Panics if the pool is empty — check [`IdPool::is_empty`] first when
    /// the count is configuration-dependent.
    pub fn random<R: Rng>(&self, rng: &mut R) -> String {
        assert!(self.count > 0, "sampling from an empty id pool");
        self.id(rng.gen_range(0..self.count))
    }

    /// Number of identifiers in the pool.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the pool has no identifiers.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ids_are_dense_and_prefixed() {
        let p = IdPool::new("person", 3);
        assert_eq!(p.id(0), "person0");
        assert_eq!(p.id(2), "person2");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn random_stays_in_range() {
        let p = IdPool::new("x", 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let id = p.random(&mut rng);
            let n: usize = id.strip_prefix('x').unwrap().parse().unwrap();
            assert!(n < 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty id pool")]
    fn random_from_empty_pool_panics() {
        let p = IdPool::new("x", 0);
        let mut rng = StdRng::seed_from_u64(1);
        p.random(&mut rng);
    }
}
