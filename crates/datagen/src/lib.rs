//! # dkindex-datagen
//!
//! Synthetic datasets for the D(k)-index reproduction:
//!
//! * [`xmark`] — XMark-like auction-site data (paper §6 dataset 1):
//!   regular, shallow, with bidder/seller/category/item references.
//! * [`nasa`] — NASA-like astronomical data (paper §6 dataset 2): broader,
//!   deeper, less regular, 20 reference kinds of which 8 are kept by
//!   default (the paper deletes 12 of 20).
//! * [`movies`] — the Figure-1-style movie database used by the paper's
//!   running examples.
//! * [`random`] — seeded random trees/graphs for property-based tests.
//!
//! Both dataset generators emit [`dkindex_xml::Document`] trees (so the XML
//! pipeline is exercised end-to-end) and provide direct `*_graph` shortcuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod id_pool;

pub mod movies;
pub mod nasa;
pub mod random;
pub mod xmark;

pub use id_pool::IdPool;
pub use movies::{movie_graph, MovieGraph};
pub use nasa::{nasa_document, nasa_graph, nasa_graph_options, NasaConfig, ALL_REFERENCE_KINDS, DEFAULT_KEPT_KINDS};
pub use random::{random_graph, regular_tree, RandomGraphConfig};
pub use xmark::{xmark_document, xmark_graph, xmark_graph_options, XmarkConfig};
