//! The movie database of the paper's Figure 1: a small graph about movies,
//! directors and actors with both containment and reference edges, used
//! throughout the paper's examples.
//!
//! The figure itself is not machine-readable, so this module reconstructs a
//! graph with the *stated* properties of §3–§4:
//!
//! * `director.movie.title` returns several titles;
//! * `movieDB.(_)?.movie.actor.name` uses the optional wildcard to absorb the
//!   irregularity that `movie` appears both directly under `movieDB` and
//!   under `director`;
//! * some `movie` nodes have an `actor` parent (via references) and some do
//!   not, so movies are 0-bisimilar but not 1-bisimilar (the node-7/9/10
//!   discussion);
//! * `name` nodes answerable with 1-bisimilarity, `title` nodes needing
//!   2-bisimilarity for "titles of movies directed by a specific director"
//!   (the motivating example for per-label similarity requirements, §4.1).

use dkindex_graph::{DataGraph, EdgeKind, LabeledGraph, NodeId};

/// Handles to the interesting nodes of the movie graph.
#[derive(Clone, Debug)]
pub struct MovieGraph {
    /// The graph itself.
    pub graph: DataGraph,
    /// The `movieDB` node (child of ROOT).
    pub movie_db: NodeId,
    /// `movie` nodes in document order.
    pub movies: Vec<NodeId>,
    /// `title` nodes, parallel to `movies`.
    pub titles: Vec<NodeId>,
    /// `director` nodes.
    pub directors: Vec<NodeId>,
    /// `actor` nodes.
    pub actors: Vec<NodeId>,
    /// `name` nodes (of directors and actors).
    pub names: Vec<NodeId>,
}

/// Build the Figure-1-style movie database.
///
/// Layout (tree edges solid, references dashed):
///
/// ```text
/// ROOT └─ movieDB
///    ├─ director₁ ─ name₁
///    │     └─ movie₁ ─ title₁
///    ├─ director₂ ─ name₂
///    │     └─ movie₂ ─ title₂
///    ├─ movie₃ ─ title₃            (movie directly under movieDB)
///    ├─ actor₁ ─ name₃   actor₁ ⤳ movie₁   (reference)
///    └─ actor₂ ─ name₄   actor₂ ⤳ movie₃   (reference)
///              movie₂ ⤳ actor₂              (movie lists its actor)
/// ```
pub fn movie_graph() -> MovieGraph {
    let mut g = DataGraph::new();
    let root = g.root();
    let movie_db = g.add_labeled_node("movieDB");
    g.add_edge(root, movie_db, EdgeKind::Tree);

    let mut movies = Vec::new();
    let mut titles = Vec::new();
    let mut directors = Vec::new();
    let mut actors = Vec::new();
    let mut names = Vec::new();

    // Two directors, each containing a movie with a title and having a name.
    for _ in 0..2 {
        let d = g.add_labeled_node("director");
        g.add_edge(movie_db, d, EdgeKind::Tree);
        directors.push(d);
        let n = g.add_labeled_node("name");
        g.add_edge(d, n, EdgeKind::Tree);
        names.push(n);
        let m = g.add_labeled_node("movie");
        g.add_edge(d, m, EdgeKind::Tree);
        movies.push(m);
        let t = g.add_labeled_node("title");
        g.add_edge(m, t, EdgeKind::Tree);
        titles.push(t);
    }

    // One movie directly under movieDB (the irregularity absorbed by `_?`).
    let m3 = g.add_labeled_node("movie");
    g.add_edge(movie_db, m3, EdgeKind::Tree);
    movies.push(m3);
    let t3 = g.add_labeled_node("title");
    g.add_edge(m3, t3, EdgeKind::Tree);
    titles.push(t3);

    // Two actors with names; references into the movie graph.
    for _ in 0..2 {
        let a = g.add_labeled_node("actor");
        g.add_edge(movie_db, a, EdgeKind::Tree);
        actors.push(a);
        let n = g.add_labeled_node("name");
        g.add_edge(a, n, EdgeKind::Tree);
        names.push(n);
    }
    // actor₁ ⤳ movie₁ : movie₁ now has an actor parent (like node 7).
    g.add_edge(actors[0], movies[0], EdgeKind::Reference);
    // actor₂ ⤳ movie₃.
    g.add_edge(actors[1], movies[2], EdgeKind::Reference);
    // movie₂ ⤳ actor₂ : an actor reachable through a movie.
    g.add_edge(movies[1], actors[1], EdgeKind::Reference);

    MovieGraph {
        graph: g,
        movie_db,
        movies,
        titles,
        directors,
        actors,
        names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::{LabeledGraph, NodeId};

    #[test]
    fn shape_matches_figure_one_description() {
        let m = movie_graph();
        let g = &m.graph;
        assert_eq!(m.movies.len(), 3);
        assert_eq!(m.titles.len(), 3);
        assert_eq!(m.directors.len(), 2);
        assert_eq!(m.actors.len(), 2);
        // movie₁ has parents {director₁, actor₁}; movie₂ only director₂.
        assert_eq!(g.parents_of(m.movies[0]).len(), 2);
        assert_eq!(g.parents_of(m.movies[1]).len(), 1);
        // movie₃ has parents {movieDB, actor₂}.
        assert_eq!(g.parents_of(m.movies[2]).len(), 2);
    }

    #[test]
    fn movies_with_and_without_actor_parents_exist() {
        let m = movie_graph();
        let g = &m.graph;
        let actor_label = g.labels().get("actor").unwrap();
        let has_actor_parent = |n: NodeId| {
            g.parents_of(n)
                .iter()
                .any(|&p| g.label_of(p) == actor_label)
        };
        assert!(has_actor_parent(m.movies[0]));
        assert!(!has_actor_parent(m.movies[1]));
    }

    #[test]
    fn every_node_is_reachable() {
        let m = movie_graph();
        let stats = dkindex_graph::stats::GraphStats::of(&m.graph);
        assert_eq!(stats.unreachable, 0);
        assert_eq!(stats.reference_edges, 3);
    }
}
