//! NASA-like astronomical dataset generator (substitute for the IBM XML
//! generator + `nasa.dtd` used in the paper's §6, dataset 2).
//!
//! `nasa.dtd` marks up datasets of the NASA/GSFC astronomical data center.
//! Compared with XMark it is *broader, deeper and less regular*, with more
//! reference kinds. This generator mirrors those properties: a `datasets`
//! root containing heavily optional, recursive `dataset` structure (abstract
//! paragraphs, revision histories, tables with fields and cells, literature
//! references, nested descriptions), and **20 distinct reference kinds**
//! (`IDREF` attributes). As in the paper — "we delete 12 of its original 20
//! references" — the default configuration keeps 8 of the 20 kinds.

use dkindex_xml::{Document, Element, GraphOptions, XmlNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 20 reference kinds (IDREF attribute names) of the simulated DTD.
pub const ALL_REFERENCE_KINDS: [&str; 20] = [
    "relatedTo",    // dataset -> dataset
    "supersedes",   // dataset -> dataset
    "derivedFrom",  // dataset -> dataset
    "companion",    // dataset -> dataset
    "cites",        // reference -> dataset
    "sameAuthor",   // reference -> author
    "about",        // keyword -> instrument
    "toTable",      // tableLink -> table
    "ofField",      // tableCell -> field
    "forField",     // details -> field
    "forTable",     // details -> table
    "seeAlso",      // description -> dataset
    "context",      // description -> instrument
    "basedOn",      // revision -> revision
    "collaborator", // author -> author
    "derivedField", // field -> field
    "aliasOf",      // altname -> dataset
    "refersTo",     // para -> dataset
    "precededBy",   // history -> history
    "partOf",       // instrument -> instrument
];

/// The 8 reference kinds kept by default (the paper deletes 12 of 20).
pub const DEFAULT_KEPT_KINDS: [&str; 8] = [
    "relatedTo",
    "supersedes",
    "cites",
    "toTable",
    "ofField",
    "seeAlso",
    "aliasOf",
    "about",
];

/// Configuration for the NASA-like generator.
#[derive(Clone, Debug)]
pub struct NasaConfig {
    /// Number of `dataset` elements.
    pub datasets: usize,
    /// Reference kinds to emit (subset of [`ALL_REFERENCE_KINDS`]).
    pub kept_reference_kinds: Vec<String>,
    /// RNG seed.
    pub seed: u64,
}

impl NasaConfig {
    /// Configuration approximating the paper's 15 MB file at scale `f = 1.0`
    /// (~2 400 datasets), with the default 8 of 20 reference kinds.
    pub fn scale(f: f64) -> Self {
        NasaConfig {
            datasets: ((2_400.0 * f).round() as usize).max(1),
            kept_reference_kinds: DEFAULT_KEPT_KINDS.iter().map(|s| s.to_string()).collect(),
            seed: 19580729, // NASA founding date
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        NasaConfig {
            datasets: 12,
            kept_reference_kinds: DEFAULT_KEPT_KINDS.iter().map(|s| s.to_string()).collect(),
            seed: 5,
        }
    }

    /// Keep all 20 reference kinds (the un-pruned DTD).
    pub fn with_all_references(mut self) -> Self {
        self.kept_reference_kinds = ALL_REFERENCE_KINDS.iter().map(|s| s.to_string()).collect();
        self
    }
}

/// Running id pools filled during generation; references sample only ids
/// that already exist (dataset ids are pre-seeded so they can be referenced
/// forward, matching ID/IDREF semantics where the target may appear later).
struct Pools {
    dataset: Vec<String>,
    table: Vec<String>,
    field: Vec<String>,
    instrument: Vec<String>,
    author: Vec<String>,
    revision: Vec<String>,
    history: Vec<String>,
}

struct Gen {
    rng: StdRng,
    kept: Vec<String>,
    pools: Pools,
    next_id: usize,
}

impl Gen {
    fn fresh_id(&mut self, prefix: &str) -> String {
        let id = format!("{prefix}{}", self.next_id);
        self.next_id += 1;
        id
    }

    /// Emit `kind="<random target>"` on `elem` with probability `p`, when
    /// the kind is kept and the pool is non-empty.
    fn maybe_ref(&mut self, elem: &mut Element, kind: &str, pool: PoolKind, p: f64) {
        if !self.kept.iter().any(|k| k == kind) {
            return;
        }
        let len = self.pool(pool).len();
        if len == 0 || !self.rng.gen_bool(p) {
            return;
        }
        let pick = self.rng.gen_range(0..len);
        let target = self.pool(pool)[pick].clone();
        elem.attributes.push((kind.to_string(), target));
    }

    fn pool(&self, kind: PoolKind) -> &[String] {
        match kind {
            PoolKind::Dataset => &self.pools.dataset,
            PoolKind::Table => &self.pools.table,
            PoolKind::Field => &self.pools.field,
            PoolKind::Instrument => &self.pools.instrument,
            PoolKind::Author => &self.pools.author,
            PoolKind::Revision => &self.pools.revision,
            PoolKind::History => &self.pools.history,
        }
    }
}

#[derive(Clone, Copy)]
enum PoolKind {
    Dataset,
    Table,
    Field,
    Instrument,
    Author,
    Revision,
    History,
}

/// Generate a NASA-like document.
pub fn nasa_document(config: &NasaConfig) -> Document {
    let mut gen = Gen {
        rng: StdRng::seed_from_u64(config.seed),
        kept: config.kept_reference_kinds.clone(),
        pools: Pools {
            // Dataset ids are pre-seeded: forward references allowed.
            dataset: (0..config.datasets).map(|i| format!("dataset{i}")).collect(),
            table: Vec::new(),
            field: Vec::new(),
            instrument: Vec::new(),
            author: Vec::new(),
            revision: Vec::new(),
            history: Vec::new(),
        },
        next_id: 0,
    };

    let mut root = Element::new("datasets");
    for i in 0..config.datasets {
        root.children.push(XmlNode::Element(dataset(&mut gen, i)));
    }
    Document { root }
}

fn dataset(g: &mut Gen, index: usize) -> Element {
    let mut ds = Element::new("dataset");
    ds.attributes.push(("id".into(), format!("dataset{index}")));
    for kind in ["relatedTo", "supersedes", "derivedFrom", "companion"] {
        g.maybe_ref(&mut ds, kind, PoolKind::Dataset, 0.35);
    }

    ds.children.push(XmlNode::Element(Element::new("title")));

    for _ in 0..g.rng.gen_range(0..=2) {
        let mut alt = Element::new("altname");
        g.maybe_ref(&mut alt, "aliasOf", PoolKind::Dataset, 0.5);
        ds.children.push(XmlNode::Element(alt));
    }

    let mut abstr = Element::new("abstract");
    for _ in 0..g.rng.gen_range(1..=3) {
        abstr.children.push(XmlNode::Element(para(g)));
    }
    ds.children.push(XmlNode::Element(abstr));

    if g.rng.gen_bool(0.7) {
        let mut kws = Element::new("keywords");
        for _ in 0..g.rng.gen_range(1..=4) {
            let mut kw = Element::new("keyword");
            g.maybe_ref(&mut kw, "about", PoolKind::Instrument, 0.4);
            kws.children.push(XmlNode::Element(kw));
        }
        ds.children.push(XmlNode::Element(kws));
    }

    for _ in 0..g.rng.gen_range(1..=3) {
        ds.children.push(XmlNode::Element(author(g)));
    }

    ds.children.push(XmlNode::Element(history(g)));
    ds.children.push(XmlNode::Element(Element::new("identifier")));

    if g.rng.gen_bool(0.5) {
        ds.children.push(XmlNode::Element(instrument(g)));
    }

    if g.rng.gen_bool(0.8) {
        let mut tables = Element::new("tables");
        for _ in 0..g.rng.gen_range(1..=2) {
            tables.children.push(XmlNode::Element(table(g)));
        }
        ds.children.push(XmlNode::Element(tables));
    }

    for _ in 0..g.rng.gen_range(0..=3) {
        ds.children.push(XmlNode::Element(reference(g)));
    }

    if g.rng.gen_bool(0.7) {
        let mut descs = Element::new("descriptions");
        let mut desc = Element::new("description");
        g.maybe_ref(&mut desc, "seeAlso", PoolKind::Dataset, 0.5);
        g.maybe_ref(&mut desc, "context", PoolKind::Instrument, 0.3);
        for _ in 0..g.rng.gen_range(1..=3) {
            desc.children.push(XmlNode::Element(para(g)));
        }
        if g.rng.gen_bool(0.4) {
            let mut details = Element::new("details");
            g.maybe_ref(&mut details, "forField", PoolKind::Field, 0.5);
            g.maybe_ref(&mut details, "forTable", PoolKind::Table, 0.5);
            desc.children.push(XmlNode::Element(details));
        }
        descs.children.push(XmlNode::Element(desc));
        ds.children.push(XmlNode::Element(descs));
    }
    ds
}

fn para(g: &mut Gen) -> Element {
    let mut p = Element::new("para");
    g.maybe_ref(&mut p, "refersTo", PoolKind::Dataset, 0.2);
    p
}

fn author(g: &mut Gen) -> Element {
    let mut a = Element::new("author");
    let id = g.fresh_id("author");
    a.attributes.push(("id".into(), id.clone()));
    g.maybe_ref(&mut a, "collaborator", PoolKind::Author, 0.3);
    g.pools.author.push(id);
    if g.rng.gen_bool(0.6) {
        a.children.push(XmlNode::Element(Element::new("initial")));
    }
    a.children.push(XmlNode::Element(Element::new("lastName")));
    if g.rng.gen_bool(0.3) {
        a.children.push(XmlNode::Element(Element::new("affiliation")));
    }
    a
}

fn history(g: &mut Gen) -> Element {
    let mut h = Element::new("history");
    let id = g.fresh_id("history");
    h.attributes.push(("id".into(), id.clone()));
    g.maybe_ref(&mut h, "precededBy", PoolKind::History, 0.4);
    g.pools.history.push(id);
    h.children.push(XmlNode::Element(Element::new("creationDate")));
    if g.rng.gen_bool(0.7) {
        h.children.push(XmlNode::Element(Element::new("ingestDate")));
    }
    for _ in 0..g.rng.gen_range(0..=3) {
        let mut rev = Element::new("revision");
        let rid = g.fresh_id("revision");
        rev.attributes.push(("id".into(), rid.clone()));
        g.maybe_ref(&mut rev, "basedOn", PoolKind::Revision, 0.5);
        g.pools.revision.push(rid);
        rev.children
            .push(XmlNode::Element(Element::new("revisionDate")));
        rev.children.push(XmlNode::Element(para(g)));
        h.children.push(XmlNode::Element(rev));
    }
    h
}

fn instrument(g: &mut Gen) -> Element {
    let mut ins = Element::new("instrument");
    let id = g.fresh_id("instrument");
    ins.attributes.push(("id".into(), id.clone()));
    g.maybe_ref(&mut ins, "partOf", PoolKind::Instrument, 0.3);
    g.pools.instrument.push(id);
    ins.children.push(XmlNode::Element(Element::new("name")));
    if g.rng.gen_bool(0.5) {
        ins.children
            .push(XmlNode::Element(Element::new("observatory")));
    }
    ins
}

fn table(g: &mut Gen) -> Element {
    let mut t = Element::new("table");
    let tid = g.fresh_id("table");
    t.attributes.push(("id".into(), tid.clone()));
    g.pools.table.push(tid);

    let mut head = Element::new("tableHead");
    if g.rng.gen_bool(0.4) {
        let mut links = Element::new("tableLinks");
        for _ in 0..g.rng.gen_range(1..=2) {
            let mut link = Element::new("tableLink");
            g.maybe_ref(&mut link, "toTable", PoolKind::Table, 0.8);
            links.children.push(XmlNode::Element(link));
        }
        head.children.push(XmlNode::Element(links));
    }
    let mut fields = Element::new("fields");
    let mut field_ids = Vec::new();
    for _ in 0..g.rng.gen_range(2..=5) {
        let mut f = Element::new("field");
        let fid = g.fresh_id("field");
        f.attributes.push(("id".into(), fid.clone()));
        g.maybe_ref(&mut f, "derivedField", PoolKind::Field, 0.2);
        g.pools.field.push(fid.clone());
        field_ids.push(fid);
        f.children.push(XmlNode::Element(Element::new("name")));
        if g.rng.gen_bool(0.5) {
            f.children.push(XmlNode::Element(Element::new("definition")));
        }
        if g.rng.gen_bool(0.4) {
            f.children.push(XmlNode::Element(Element::new("units")));
        }
        fields.children.push(XmlNode::Element(f));
    }
    head.children.push(XmlNode::Element(fields));
    t.children.push(XmlNode::Element(head));

    for _ in 0..g.rng.gen_range(1..=3) {
        let mut row = Element::new("tableRow");
        for _ in 0..g.rng.gen_range(1..=3) {
            let mut cell = Element::new("tableCell");
            g.maybe_ref(&mut cell, "ofField", PoolKind::Field, 0.6);
            row.children.push(XmlNode::Element(cell));
        }
        t.children.push(XmlNode::Element(row));
    }
    t
}

fn reference(g: &mut Gen) -> Element {
    let mut r = Element::new("reference");
    g.maybe_ref(&mut r, "cites", PoolKind::Dataset, 0.6);
    g.maybe_ref(&mut r, "sameAuthor", PoolKind::Author, 0.3);
    let mut source = Element::new("source");
    let which = g.rng.gen_range(0..3);
    let inner = match which {
        0 => {
            let mut j = Element::new("journal");
            j.children.push(XmlNode::Element(Element::new("title")));
            for _ in 0..g.rng.gen_range(1..=2) {
                j.children.push(XmlNode::Element(author(g)));
            }
            if g.rng.gen_bool(0.5) {
                j.children.push(XmlNode::Element(Element::new("date")));
            }
            j
        }
        1 => {
            let mut b = Element::new("book");
            b.children.push(XmlNode::Element(Element::new("title")));
            if g.rng.gen_bool(0.5) {
                b.children.push(XmlNode::Element(Element::new("publisher")));
            }
            b
        }
        _ => {
            let mut o = Element::new("other");
            o.children.push(XmlNode::Element(Element::new("title")));
            o
        }
    };
    source.children.push(XmlNode::Element(inner));
    r.children.push(XmlNode::Element(source));
    r
}

/// XML → graph options matching this generator's reference kinds. Only the
/// kinds in `config.kept_reference_kinds` appear in the document, so listing
/// all 20 is safe for any configuration.
pub fn nasa_graph_options() -> GraphOptions {
    GraphOptions {
        id_attributes: vec!["id".to_string()],
        idref_attributes: ALL_REFERENCE_KINDS.iter().map(|s| s.to_string()).collect(),
        attribute_nodes: false,
        value_nodes: false,
    }
}

/// Generate the NASA-like data graph directly.
pub fn nasa_graph(config: &NasaConfig) -> dkindex_graph::DataGraph {
    let doc = nasa_document(config);
    dkindex_xml::document_to_graph(&doc, &nasa_graph_options())
        .expect("generator emits resolvable references")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::stats::GraphStats;
    use dkindex_graph::LabeledGraph;

    #[test]
    fn generation_is_deterministic() {
        let c = NasaConfig::tiny();
        assert_eq!(nasa_document(&c), nasa_document(&c));
    }

    #[test]
    fn graph_resolves_and_has_references() {
        let g = nasa_graph(&NasaConfig::tiny());
        let stats = GraphStats::of(&g);
        assert_eq!(stats.unreachable, 0);
        assert!(stats.reference_edges > 0);
    }

    #[test]
    fn kept_kinds_limit_reference_kinds_emitted() {
        let doc = nasa_document(&NasaConfig::tiny());
        let mut kinds = std::collections::HashSet::new();
        collect_ref_kinds(&doc.root, &mut kinds);
        for k in &kinds {
            assert!(
                DEFAULT_KEPT_KINDS.contains(&k.as_str()),
                "unexpected reference kind {k}"
            );
        }
    }

    #[test]
    fn all_references_config_emits_more_kinds() {
        let pruned = nasa_document(&NasaConfig::tiny());
        let full = nasa_document(&NasaConfig::tiny().with_all_references());
        let mut kp = std::collections::HashSet::new();
        let mut kf = std::collections::HashSet::new();
        collect_ref_kinds(&pruned.root, &mut kp);
        collect_ref_kinds(&full.root, &mut kf);
        assert!(kf.len() > kp.len());
        // And the full graph has more reference edges.
        let gp = nasa_graph(&NasaConfig::tiny());
        let gf = nasa_graph(&NasaConfig::tiny().with_all_references());
        assert!(
            GraphStats::of(&gf).reference_edges > GraphStats::of(&gp).reference_edges
        );
    }

    #[test]
    fn nasa_is_deeper_than_xmark() {
        let nasa = nasa_graph(&NasaConfig::tiny());
        let xmark = crate::xmark::xmark_graph(&crate::xmark::XmarkConfig::tiny());
        // Comparable-or-greater depth and more reference kinds:
        // "broader, deeper and less regular ... more references".
        let sn = GraphStats::of(&nasa);
        let sx = GraphStats::of(&xmark);
        assert!(sn.max_depth >= sx.max_depth.saturating_sub(1));
        assert!(DEFAULT_KEPT_KINDS.len() > 6); // 8 kinds vs XMark's 6
    }

    #[test]
    fn dataset_count_matches_config() {
        let g = nasa_graph(&NasaConfig::tiny());
        let ds = g.labels().get("dataset").unwrap();
        assert_eq!(g.nodes_with_label(ds).len(), 12);
    }

    fn collect_ref_kinds(e: &Element, out: &mut std::collections::HashSet<String>) {
        for (k, _) in &e.attributes {
            if k != "id" {
                out.insert(k.clone());
            }
        }
        for c in e.child_elements() {
            collect_ref_kinds(c, out);
        }
    }
}
