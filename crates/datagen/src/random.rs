//! Seeded random graph generation for tests and property-based checks:
//! random labeled trees with optional random reference edges.

use dkindex_graph::{DataGraph, EdgeKind, LabeledGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_graph`].
#[derive(Clone, Debug)]
pub struct RandomGraphConfig {
    /// Number of nodes to generate beyond the root.
    pub nodes: usize,
    /// Number of distinct labels to draw from (`l0`, `l1`, ...).
    pub labels: usize,
    /// Number of extra reference edges to sprinkle (may create cycles).
    pub reference_edges: usize,
    /// Maximum tree fan-out per node; attachment points are resampled until
    /// one with spare capacity is found.
    pub max_fanout: usize,
    /// RNG seed — equal configs generate equal graphs.
    pub seed: u64,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            nodes: 100,
            labels: 5,
            reference_edges: 10,
            max_fanout: 8,
            seed: 42,
        }
    }
}

/// Generate a connected random labeled graph: a random tree (every new node
/// attaches below an existing one) plus random reference edges.
pub fn random_graph(config: &RandomGraphConfig) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = DataGraph::new();
    let label_ids: Vec<_> = (0..config.labels.max(1))
        .map(|i| g.intern(&format!("l{i}")))
        .collect();

    let mut nodes: Vec<NodeId> = vec![g.root()];
    let mut fanout: Vec<usize> = vec![0];
    for _ in 0..config.nodes {
        let label = label_ids[rng.gen_range(0..label_ids.len())];
        let node = g.add_node(label);
        // Pick a parent with spare capacity (the root is unrestricted so the
        // loop always terminates).
        let parent_idx = loop {
            let i = rng.gen_range(0..nodes.len());
            if i == 0 || fanout[i] < config.max_fanout {
                break i;
            }
        };
        g.add_edge(nodes[parent_idx], node, EdgeKind::Tree);
        fanout[parent_idx] += 1;
        nodes.push(node);
        fanout.push(0);
    }

    let mut added = 0;
    let mut attempts = 0;
    while added < config.reference_edges && attempts < config.reference_edges * 20 {
        attempts += 1;
        let u = nodes[rng.gen_range(0..nodes.len())];
        let v = nodes[rng.gen_range(0..nodes.len())];
        if u != v && g.add_edge(u, v, EdgeKind::Reference) {
            added += 1;
        }
    }
    g
}

/// Generate a perfectly regular tree: `depth` levels, `fanout` children per
/// node, labels cycling per level (`level0`, `level1`, ...). Bisimulation
/// collapses each level to one block — the best case for structural
/// summaries and a useful size-contrast fixture.
pub fn regular_tree(depth: usize, fanout: usize) -> DataGraph {
    let mut g = DataGraph::new();
    let mut frontier = vec![g.root()];
    for level in 0..depth {
        let label = g.intern(&format!("level{level}"));
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &parent in &frontier {
            for _ in 0..fanout {
                let node = g.add_node(label);
                g.add_edge(parent, node, EdgeKind::Tree);
                next.push(node);
            }
        }
        frontier = next;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::stats::GraphStats;
    use dkindex_graph::LabeledGraph;

    #[test]
    fn random_graph_is_connected_and_sized() {
        let g = random_graph(&RandomGraphConfig::default());
        let stats = GraphStats::of(&g);
        assert_eq!(stats.nodes, 101);
        assert_eq!(stats.unreachable, 0);
        assert_eq!(stats.reference_edges, 10);
    }

    #[test]
    fn equal_seeds_give_equal_graphs() {
        let c = RandomGraphConfig::default();
        let g1 = random_graph(&c);
        let g2 = random_graph(&c);
        assert!(g1.edges().eq(g2.edges()));
        let labels1: Vec<_> = g1.node_ids().map(|n| g1.label_of(n)).collect();
        let labels2: Vec<_> = g2.node_ids().map(|n| g2.label_of(n)).collect();
        assert_eq!(labels1, labels2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = random_graph(&RandomGraphConfig::default());
        let g2 = random_graph(&RandomGraphConfig {
            seed: 7,
            ..RandomGraphConfig::default()
        });
        assert!(!g1.edges().eq(g2.edges()));
    }

    #[test]
    fn fanout_limit_is_respected_for_non_root() {
        let g = random_graph(&RandomGraphConfig {
            nodes: 200,
            max_fanout: 3,
            reference_edges: 0,
            ..RandomGraphConfig::default()
        });
        for n in g.node_ids() {
            if n != g.root() {
                assert!(g.children_of(n).len() <= 3, "node {n:?} exceeds fanout");
            }
        }
    }

    #[test]
    fn regular_tree_has_expected_shape() {
        let g = regular_tree(3, 2);
        // 1 + 2 + 4 + 8
        assert_eq!(g.node_count(), 15);
        let stats = GraphStats::of(&g);
        assert_eq!(stats.max_depth, 3);
        assert_eq!(stats.unreachable, 0);
    }

    #[test]
    fn regular_tree_collapses_under_bisimulation() {
        // Cross-crate sanity is covered in integration tests; here we only
        // check per-level label homogeneity.
        let g = regular_tree(4, 3);
        let depth = dkindex_graph::traversal::depth_from_root(&g);
        for n in g.node_ids() {
            if n == g.root() {
                continue;
            }
            let d = depth[n.index()].unwrap();
            assert_eq!(g.label_name(n), format!("level{}", d - 1));
        }
    }
}
