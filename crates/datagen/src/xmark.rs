//! XMark-like auction-site data generator (substitute for the XMark
//! benchmark generator used in the paper's §6, dataset 1).
//!
//! The generator emits the XMark DTD's element hierarchy — `site` with
//! `regions` (six continents of `item`s), `categories`, `catgraph`, `people`,
//! `open_auctions` and `closed_auctions` — with the benchmark's reference
//! structure: items point into categories (`incategory/@category`), catgraph
//! edges relate categories (`@from`/`@to`), bidders/sellers/buyers point at
//! people, auctions point at items, and watches point at open auctions.
//! Text payloads are omitted (the paper's experiments index structure, not
//! values), so the substitution preserves the label alphabet, the regular
//! shallow shape, and the reference density — the inputs the D(k)/A(k)
//! experiments are sensitive to.

use crate::id_pool::IdPool;
use dkindex_xml::{Document, Element, GraphOptions, XmlNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the XMark-like generator. Counts follow the XMark
/// scaling ratios (per scale factor 1.0: 25 500 people, 21 750 items,
/// 1 000 categories, 12 000 open and 9 750 closed auctions).
#[derive(Clone, Debug)]
pub struct XmarkConfig {
    /// Number of `person` elements.
    pub people: usize,
    /// Total number of `item` elements (spread over six regions).
    pub items: usize,
    /// Number of `category` elements.
    pub categories: usize,
    /// Number of `open_auction` elements.
    pub open_auctions: usize,
    /// Number of `closed_auction` elements.
    pub closed_auctions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl XmarkConfig {
    /// Configuration approximating XMark scale factor `f`
    /// (`f = 0.1` ≈ the paper's 10 MB file).
    pub fn scale(f: f64) -> Self {
        let n = |base: f64| ((base * f).round() as usize).max(1);
        XmarkConfig {
            people: n(25_500.0),
            items: n(21_750.0),
            categories: n(1_000.0),
            open_auctions: n(12_000.0),
            closed_auctions: n(9_750.0),
            seed: 20030609, // SIGMOD 2003 opening day
        }
    }

    /// A small configuration for unit tests (hundreds of nodes).
    pub fn tiny() -> Self {
        XmarkConfig {
            people: 20,
            items: 24,
            categories: 6,
            open_auctions: 12,
            closed_auctions: 10,
            seed: 7,
        }
    }
}

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Generate an XMark-like document.
pub fn xmark_document(config: &XmarkConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let categories = IdPool::new("category", config.categories);
    let items = IdPool::new("item", config.items);
    let people = IdPool::new("person", config.people);
    let auctions = IdPool::new("open_auction", config.open_auctions);

    let mut site = Element::new("site");

    // regions: six continents sharing the item pool.
    let mut regions = Element::new("regions");
    fill_regions(&mut regions, &mut rng, config, &categories);
    site.children.push(XmlNode::Element(regions));

    // categories.
    let mut cats = Element::new("categories");
    for i in 0..config.categories {
        let mut c = Element::new("category");
        c.attributes.push(("id".into(), categories.id(i)));
        c.children.push(XmlNode::Element(Element::new("name")));
        c.children
            .push(XmlNode::Element(Element::new("description")));
        cats.children.push(XmlNode::Element(c));
    }
    site.children.push(XmlNode::Element(cats));

    // catgraph: random edges between categories.
    let mut catgraph = Element::new("catgraph");
    if config.categories >= 2 {
        for _ in 0..config.categories {
            let mut e = Element::new("edge");
            e.attributes
                .push(("from".into(), categories.random(&mut rng)));
            e.attributes
                .push(("to".into(), categories.random(&mut rng)));
            catgraph.children.push(XmlNode::Element(e));
        }
    }
    site.children.push(XmlNode::Element(catgraph));

    // people.
    let mut people_el = Element::new("people");
    for i in 0..config.people {
        people_el.children.push(XmlNode::Element(person(
            &mut rng, &people, &categories, &auctions, i, config,
        )));
    }
    site.children.push(XmlNode::Element(people_el));

    // open_auctions.
    let mut open = Element::new("open_auctions");
    for i in 0..config.open_auctions {
        open.children.push(XmlNode::Element(open_auction(
            &mut rng, &auctions, &people, &items, i,
        )));
    }
    site.children.push(XmlNode::Element(open));

    // closed_auctions.
    let mut closed = Element::new("closed_auctions");
    for _ in 0..config.closed_auctions {
        closed
            .children
            .push(XmlNode::Element(closed_auction(&mut rng, &people, &items)));
    }
    site.children.push(XmlNode::Element(closed));

    Document { root: site }
}

/// Distribute `config.items` items round-capacity over the six regions.
fn fill_regions(regions: &mut Element, rng: &mut StdRng, config: &XmarkConfig, categories: &IdPool) {
    let per_region = config.items.div_ceil(REGIONS.len());
    let mut item_iter = 0..config.items;
    for region_name in REGIONS {
        let mut region = Element::new(region_name);
        for _ in 0..per_region {
            let Some(i) = item_iter.next() else { break };
            region
                .children
                .push(XmlNode::Element(item(rng, i, categories)));
        }
        regions.children.push(XmlNode::Element(region));
    }
}

fn item(rng: &mut StdRng, index: usize, categories: &IdPool) -> Element {
    let mut it = Element::new("item");
    it.attributes.push(("id".into(), IdPool::format("item", index)));
    for name in ["location", "quantity", "name", "payment"] {
        it.children.push(XmlNode::Element(Element::new(name)));
    }
    let mut descr = Element::new("description");
    if rng.gen_bool(0.7) {
        descr.children.push(XmlNode::Element(Element::new("text")));
    } else {
        let mut parlist = Element::new("parlist");
        for _ in 0..rng.gen_range(1..=3) {
            parlist
                .children
                .push(XmlNode::Element(Element::new("listitem")));
        }
        descr.children.push(XmlNode::Element(parlist));
    }
    it.children.push(XmlNode::Element(descr));
    it.children.push(XmlNode::Element(Element::new("shipping")));
    if !categories.is_empty() {
        for _ in 0..rng.gen_range(1..=2) {
            let mut inc = Element::new("incategory");
            inc.attributes.push(("category".into(), categories.random(rng)));
            it.children.push(XmlNode::Element(inc));
        }
    }
    let mut mailbox = Element::new("mailbox");
    for _ in 0..rng.gen_range(0..=2) {
        let mut mail = Element::new("mail");
        for f in ["from", "to", "date"] {
            mail.children.push(XmlNode::Element(Element::new(f)));
        }
        mailbox.children.push(XmlNode::Element(mail));
    }
    it.children.push(XmlNode::Element(mailbox));
    it
}

fn person(
    rng: &mut StdRng,
    people: &IdPool,
    categories: &IdPool,
    auctions: &IdPool,
    index: usize,
    config: &XmarkConfig,
) -> Element {
    let _ = people;
    let mut p = Element::new("person");
    p.attributes.push(("id".into(), IdPool::format("person", index)));
    p.children.push(XmlNode::Element(Element::new("name")));
    p.children
        .push(XmlNode::Element(Element::new("emailaddress")));
    if rng.gen_bool(0.5) {
        p.children.push(XmlNode::Element(Element::new("phone")));
    }
    if rng.gen_bool(0.6) {
        let mut addr = Element::new("address");
        for f in ["street", "city", "country", "zipcode"] {
            addr.children.push(XmlNode::Element(Element::new(f)));
        }
        p.children.push(XmlNode::Element(addr));
    }
    if rng.gen_bool(0.3) {
        p.children.push(XmlNode::Element(Element::new("homepage")));
    }
    if rng.gen_bool(0.4) {
        p.children.push(XmlNode::Element(Element::new("creditcard")));
    }
    if rng.gen_bool(0.7) {
        let mut profile = Element::new("profile");
        if !categories.is_empty() {
            for _ in 0..rng.gen_range(0..=3) {
                let mut interest = Element::new("interest");
                interest
                    .attributes
                    .push(("category".into(), categories.random(rng)));
                profile.children.push(XmlNode::Element(interest));
            }
        }
        if rng.gen_bool(0.5) {
            profile.children.push(XmlNode::Element(Element::new("education")));
        }
        if rng.gen_bool(0.5) {
            profile.children.push(XmlNode::Element(Element::new("gender")));
        }
        profile.children.push(XmlNode::Element(Element::new("business")));
        if rng.gen_bool(0.5) {
            profile.children.push(XmlNode::Element(Element::new("age")));
        }
        p.children.push(XmlNode::Element(profile));
    }
    if config.open_auctions > 0 && rng.gen_bool(0.4) {
        let mut watches = Element::new("watches");
        for _ in 0..rng.gen_range(1..=2) {
            let mut w = Element::new("watch");
            w.attributes
                .push(("open_auction".into(), auctions.random(rng)));
            watches.children.push(XmlNode::Element(w));
        }
        p.children.push(XmlNode::Element(watches));
    }
    p
}

fn open_auction(
    rng: &mut StdRng,
    auctions: &IdPool,
    people: &IdPool,
    items: &IdPool,
    index: usize,
) -> Element {
    let _ = auctions;
    let mut a = Element::new("open_auction");
    a.attributes
        .push(("id".into(), IdPool::format("open_auction", index)));
    a.children.push(XmlNode::Element(Element::new("initial")));
    if rng.gen_bool(0.4) {
        a.children.push(XmlNode::Element(Element::new("reserve")));
    }
    for _ in 0..rng.gen_range(0..=4) {
        let mut b = Element::new("bidder");
        b.children.push(XmlNode::Element(Element::new("date")));
        b.children.push(XmlNode::Element(Element::new("time")));
        let mut pref = Element::new("personref");
        pref.attributes.push(("person".into(), people.random(rng)));
        b.children.push(XmlNode::Element(pref));
        b.children.push(XmlNode::Element(Element::new("increase")));
        a.children.push(XmlNode::Element(b));
    }
    a.children.push(XmlNode::Element(Element::new("current")));
    if rng.gen_bool(0.3) {
        a.children.push(XmlNode::Element(Element::new("privacy")));
    }
    let mut itemref = Element::new("itemref");
    itemref.attributes.push(("item".into(), items.random(rng)));
    a.children.push(XmlNode::Element(itemref));
    let mut seller = Element::new("seller");
    seller.attributes.push(("person".into(), people.random(rng)));
    a.children.push(XmlNode::Element(seller));
    a.children.push(XmlNode::Element(annotation(rng)));
    a.children.push(XmlNode::Element(Element::new("quantity")));
    a.children.push(XmlNode::Element(Element::new("type")));
    let mut interval = Element::new("interval");
    interval.children.push(XmlNode::Element(Element::new("start")));
    interval.children.push(XmlNode::Element(Element::new("end")));
    a.children.push(XmlNode::Element(interval));
    a
}

fn closed_auction(rng: &mut StdRng, people: &IdPool, items: &IdPool) -> Element {
    let mut a = Element::new("closed_auction");
    let mut seller = Element::new("seller");
    seller.attributes.push(("person".into(), people.random(rng)));
    a.children.push(XmlNode::Element(seller));
    let mut buyer = Element::new("buyer");
    buyer.attributes.push(("person".into(), people.random(rng)));
    a.children.push(XmlNode::Element(buyer));
    let mut itemref = Element::new("itemref");
    itemref.attributes.push(("item".into(), items.random(rng)));
    a.children.push(XmlNode::Element(itemref));
    for f in ["price", "date", "quantity", "type"] {
        a.children.push(XmlNode::Element(Element::new(f)));
    }
    a.children.push(XmlNode::Element(annotation(rng)));
    a
}

fn annotation(rng: &mut StdRng) -> Element {
    let mut ann = Element::new("annotation");
    if rng.gen_bool(0.6) {
        ann.children.push(XmlNode::Element(Element::new("author")));
    }
    ann.children
        .push(XmlNode::Element(Element::new("description")));
    ann.children.push(XmlNode::Element(Element::new("happiness")));
    ann
}

/// The XML → graph options matching this generator's reference attributes.
pub fn xmark_graph_options() -> GraphOptions {
    GraphOptions {
        id_attributes: vec!["id".to_string()],
        idref_attributes: vec![
            "category".to_string(),
            "from".to_string(),
            "to".to_string(),
            "person".to_string(),
            "open_auction".to_string(),
            "item".to_string(),
        ],
        attribute_nodes: false,
        value_nodes: false,
    }
}

/// Generate the XMark-like data graph directly.
pub fn xmark_graph(config: &XmarkConfig) -> dkindex_graph::DataGraph {
    let doc = xmark_document(config);
    dkindex_xml::document_to_graph(&doc, &xmark_graph_options())
        .expect("generator emits resolvable references")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::stats::GraphStats;
    use dkindex_graph::LabeledGraph;

    #[test]
    fn tiny_document_has_all_six_sections() {
        let doc = xmark_document(&XmarkConfig::tiny());
        let names: Vec<&str> = doc
            .root
            .child_elements()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "regions",
                "categories",
                "catgraph",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let c = XmarkConfig::tiny();
        assert_eq!(xmark_document(&c), xmark_document(&c));
    }

    #[test]
    fn graph_mapping_resolves_all_references() {
        let g = xmark_graph(&XmarkConfig::tiny());
        let stats = GraphStats::of(&g);
        assert_eq!(stats.unreachable, 0);
        assert!(stats.reference_edges > 0, "expected ID/IDREF edges");
    }

    #[test]
    fn graph_has_regular_auction_structure() {
        let g = xmark_graph(&XmarkConfig::tiny());
        let person = g.labels().get("person").unwrap();
        assert_eq!(g.nodes_with_label(person).len(), 20);
        let item = g.labels().get("item").unwrap();
        assert_eq!(g.nodes_with_label(item).len(), 24);
        // personref nodes reference person nodes.
        let personref = g.labels().get("personref").unwrap();
        for pr in g.nodes_with_label(personref) {
            assert!(g
                .children_of(pr)
                .iter()
                .any(|&c| g.label_of(c) == person));
        }
    }

    #[test]
    fn scale_tracks_xmark_ratios() {
        let c = XmarkConfig::scale(0.01);
        assert_eq!(c.people, 255);
        assert_eq!(c.items, 218);
        assert_eq!(c.categories, 10);
        assert_eq!(c.open_auctions, 120);
        assert_eq!(c.closed_auctions, 98);
    }

    #[test]
    fn document_round_trips_through_xml_text() {
        let doc = xmark_document(&XmarkConfig::tiny());
        let text = doc.to_xml();
        let doc2 = Document::parse(&text).unwrap();
        assert_eq!(doc, doc2);
    }
}
