//! GraphViz DOT export, rendering tree edges solid and reference edges dashed
//! in the style of the paper's Figure 1.

use crate::graph::{DataGraph, EdgeKind, LabeledGraph};
use std::fmt::Write as _;

/// Render `g` as a GraphViz `digraph`.
///
/// Node shapes: the root is a doublecircle, `VALUE` nodes are boxes, element
/// nodes are ellipses labeled `name (id)`.
pub fn to_dot(g: &DataGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph data_graph {\n");
    out.push_str("  rankdir=TB;\n");
    for node in g.node_ids() {
        let name = g.label_name(node);
        let shape = if node == g.root() {
            "doublecircle"
        } else if name == "VALUE" {
            "box"
        } else {
            "ellipse"
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{} ({})\", shape={}];",
            node.index(),
            escape(name),
            node.index(),
            shape
        );
    }
    for &(from, to, kind) in g.edges() {
        let style = match kind {
            EdgeKind::Tree => "solid",
            EdgeKind::Reference => "dashed",
        };
        let _ = writeln!(out, "  n{} -> n{} [style={}];", from.index(), to.index(), style);
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataGraph, EdgeKind};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("movie");
        let v = g.add_labeled_node("VALUE");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, v, EdgeKind::Reference);
        let dot = to_dot(&g);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("movie (1)"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("n1 -> n2"));
    }

    #[test]
    fn dot_escapes_quotes_in_labels() {
        let mut g = DataGraph::new();
        g.add_labeled_node("we\"ird");
        let dot = to_dot(&g);
        assert!(dot.contains("we\\\"ird"));
    }
}
