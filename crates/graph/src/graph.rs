//! The data graph: a rooted, directed, node-labeled graph (paper §3).
//!
//! XML and other semi-structured data are modeled as a directed labeled graph
//! with a single distinguished `ROOT` node. Tree (containment) edges and
//! reference (`ID`/`IDREF`, XLink) edges are both stored; the paper's
//! algorithms treat them identically, but the distinction is kept so that the
//! update experiments can sample reference-label pairs (§6.2) and so DOT
//! export can render references dashed, as in the paper's Figure 1.

use crate::label::{LabelId, LabelInterner};
use crate::segvec::SegVec;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of a node in a [`DataGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Numeric index of this node, suitable for indexing per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a `NodeId` from an index previously obtained through
    /// [`NodeId::index`]. The caller must ensure the index is in range.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Whether an edge is a containment (tree) edge or a reference edge.
///
/// The data model does not differentiate between the two when evaluating path
/// expressions or building summaries (paper §3: "we do not differentiate
/// between these two kinds of edges"), but generators and the update
/// experiments need to know which edges are references.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum EdgeKind {
    /// Element–subelement / element–attribute / element–value containment.
    Tree,
    /// `ID`/`IDREF` or XLink reference.
    Reference,
}

/// Read-only view shared by data graphs and index graphs.
///
/// The path-expression evaluator and the partition-refinement engine are
/// generic over this trait, so the same automaton code evaluates queries on
/// the data graph and on any summary graph, and the same refinement code
/// builds an index from a data graph *or from another index graph* (the trick
/// behind the D(k) subgraph-addition update and the demoting process).
pub trait LabeledGraph {
    /// Number of nodes; node ids are `0..node_count()`.
    fn node_count(&self) -> usize;
    /// Number of directed edges.
    fn edge_count(&self) -> usize;
    /// Label of `node`.
    fn label_of(&self, node: NodeId) -> LabelId;
    /// Out-neighbors (children) of `node`.
    fn children_of(&self, node: NodeId) -> &[NodeId];
    /// In-neighbors (parents) of `node`.
    fn parents_of(&self, node: NodeId) -> &[NodeId];
    /// The distinguished root node.
    fn root(&self) -> NodeId;
    /// The label interner naming this graph's labels.
    fn labels(&self) -> &LabelInterner;

    /// Iterate over all node ids.
    fn node_ids(&self) -> NodeIds {
        NodeIds {
            next: 0,
            end: self.node_count() as u32,
        }
    }
}

/// Iterator over the node ids `0..n` of a graph.
#[derive(Clone, Debug)]
pub struct NodeIds {
    next: u32,
    end: u32,
}

impl Iterator for NodeIds {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.end {
            let id = NodeId(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeIds {}

/// A rooted, directed, node-labeled multigraph-free graph.
///
/// Stores forward and backward adjacency so that both query evaluation
/// (forward) and bisimulation refinement (backward, over incoming paths) are
/// cheap. Nodes are created once and never removed; edges can be appended
/// (the paper's two update primitives are subgraph addition and edge
/// addition — deletions are out of scope for the paper and for this crate).
///
/// All per-node and per-edge state lives in [`SegVec`] columns and the label
/// interner behind an [`Arc`], so `clone()` is a shallow copy-on-write
/// snapshot: two clones share every adjacency segment until one of them
/// mutates a node in it. This is what lets the serve layer publish a fresh
/// epoch after a maintenance batch by copying only the segments the batch
/// touched (see `core::serve`).
#[derive(Clone)]
pub struct DataGraph {
    labels_of_nodes: SegVec<LabelId>,
    children: SegVec<Vec<NodeId>>,
    parents: SegVec<Vec<NodeId>>,
    /// Edge list in insertion order, `(from, to, kind)`.
    edges: SegVec<(NodeId, NodeId, EdgeKind)>,
    root: NodeId,
    interner: Arc<LabelInterner>,
}

impl DataGraph {
    /// Create a graph containing only the distinguished `ROOT` node.
    pub fn new() -> Self {
        let mut g = DataGraph {
            labels_of_nodes: SegVec::new(),
            children: SegVec::new(),
            parents: SegVec::new(),
            edges: SegVec::new(),
            root: NodeId(0),
            interner: Arc::new(LabelInterner::new()),
        };
        g.labels_of_nodes.push(LabelInterner::ROOT);
        g.children.push(Vec::new());
        g.parents.push(Vec::new());
        g
    }

    /// Intern a label string in this graph's interner. When the interner is
    /// shared with another graph or an index snapshot, it is copied on
    /// write first.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(id) = self.interner.get(name) {
            return id;
        }
        Arc::make_mut(&mut self.interner).intern(name)
    }

    /// A shared handle to this graph's label interner, so index snapshots
    /// can name the same labels without copying the table.
    pub fn labels_shared(&self) -> Arc<LabelInterner> {
        Arc::clone(&self.interner)
    }

    /// Add a node with the given (already interned) label. The node starts
    /// disconnected; use [`DataGraph::add_edge`] to attach it.
    pub fn add_node(&mut self, label: LabelId) -> NodeId {
        debug_assert!(label.index() < self.interner.len(), "foreign label id");
        let id = NodeId(u32::try_from(self.labels_of_nodes.len()).expect("too many nodes"));
        self.labels_of_nodes.push(label);
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    /// Convenience: intern `label` and add a node carrying it.
    pub fn add_labeled_node(&mut self, label: &str) -> NodeId {
        let l = self.intern(label);
        self.add_node(l)
    }

    /// Add a directed edge `from → to`. Parallel edges are silently ignored
    /// (the data model's adjacency is a set, and summary construction would
    /// otherwise double-count parents).
    ///
    /// Returns `true` if the edge was newly inserted.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) -> bool {
        assert!(from.index() < self.node_count(), "edge source out of range");
        assert!(to.index() < self.node_count(), "edge target out of range");
        if self.has_edge(from, to) {
            return false;
        }
        if let Some(c) = self.children.get_mut(from.index()) {
            c.push(to);
        }
        if let Some(p) = self.parents.get_mut(to.index()) {
            p.push(from);
        }
        self.edges.push((from, to, kind));
        true
    }

    /// True if the edge `from → to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.children
            .get(from.index())
            .is_some_and(|c| c.contains(&to))
    }

    /// The edges in insertion order, as `(from, to, kind)` triples.
    pub fn edges(&self) -> impl Iterator<Item = &(NodeId, NodeId, EdgeKind)> {
        self.edges.iter()
    }

    /// All nodes carrying `label`.
    pub fn nodes_with_label(&self, label: LabelId) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.label_of(n) == label)
            .collect()
    }

    /// Label name of a node (convenience over `labels().name(label_of(n))`).
    pub fn label_name(&self, node: NodeId) -> &str {
        self.interner.name(self.label_of(node))
    }

    /// Structural-sharing census against another snapshot of this graph:
    /// `(shared, total)` backing segments across the label, adjacency and
    /// edge columns, where a segment counts as shared when both snapshots
    /// still reference the same allocation. Diagnostics only — contents are
    /// never affected by sharing.
    pub fn shared_segments_with(&self, other: &DataGraph) -> (usize, usize) {
        let shared = self.labels_of_nodes.shared_segments_with(&other.labels_of_nodes)
            + self.children.shared_segments_with(&other.children)
            + self.parents.shared_segments_with(&other.parents)
            + self.edges.shared_segments_with(&other.edges);
        let total = self.labels_of_nodes.segment_count()
            + self.children.segment_count()
            + self.parents.segment_count()
            + self.edges.segment_count();
        (shared, total)
    }

    /// Graft a copy of `sub` into this graph **under this graph's root**
    /// (paper §5.1: "a new subgraph H is inserted under the root of the
    /// original data graph G"). `sub`'s own root node is *not* copied; its
    /// children become children of `self`'s root. Labels are re-interned.
    ///
    /// Returns the mapping from `sub`'s node ids to the new ids in `self`
    /// (`sub`'s root maps to `self`'s root).
    pub fn graft_under_root(&mut self, sub: &DataGraph) -> Vec<NodeId> {
        let mut map = vec![NodeId(u32::MAX); sub.node_count()];
        map[sub.root().index()] = self.root;
        // Re-intern labels and copy every non-root node.
        for node in sub.node_ids() {
            if node == sub.root() {
                continue;
            }
            let name = sub.label_name(node);
            let label = self.intern(name);
            map[node.index()] = self.add_node(label);
        }
        // Copy every edge, re-rooting edges out of sub's root.
        for &(from, to, kind) in sub.edges() {
            let (f, t) = (map[from.index()], map[to.index()]);
            self.add_edge(f, t, kind);
        }
        map
    }

    /// Total memory-resident size estimate in bytes (nodes + adjacency).
    /// Used only for reporting; not part of the paper's cost model.
    pub fn approx_bytes(&self) -> usize {
        let node_bytes = self.labels_of_nodes.len() * std::mem::size_of::<LabelId>();
        let adj: usize = self
            .children
            .iter()
            .chain(self.parents.iter())
            .map(|v| v.len() * std::mem::size_of::<NodeId>())
            .sum();
        node_bytes + adj
    }

    fn node_slot(column: &SegVec<Vec<NodeId>>, node: NodeId) -> &[NodeId] {
        column
            .get(node.index())
            .map(Vec::as_slice)
            .expect("node id out of range")
    }
}

impl Default for DataGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl LabeledGraph for DataGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.labels_of_nodes.len()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    fn label_of(&self, node: NodeId) -> LabelId {
        *self
            .labels_of_nodes
            .get(node.index())
            .expect("node id out of range")
    }

    #[inline]
    fn children_of(&self, node: NodeId) -> &[NodeId] {
        Self::node_slot(&self.children, node)
    }

    #[inline]
    fn parents_of(&self, node: NodeId) -> &[NodeId] {
        Self::node_slot(&self.parents, node)
    }

    #[inline]
    fn root(&self) -> NodeId {
        self.root
    }

    #[inline]
    fn labels(&self) -> &LabelInterner {
        &self.interner
    }
}

impl fmt::Debug for DataGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataGraph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .field("labels", &self.interner.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DataGraph {
        // ROOT -> a -> b, ROOT -> a' -> b', a -ref-> b'
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let a2 = g.add_labeled_node("a");
        let b2 = g.add_labeled_node("b");
        let root = g.root();
        g.add_edge(root, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(root, a2, EdgeKind::Tree);
        g.add_edge(a2, b2, EdgeKind::Tree);
        g.add_edge(a, b2, EdgeKind::Reference);
        g
    }

    #[test]
    fn new_graph_has_only_root() {
        let g = DataGraph::new();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.label_of(g.root()), LabelInterner::ROOT);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = tiny();
        for &(from, to, _) in g.edges() {
            assert!(g.children_of(from).contains(&to));
            assert!(g.parents_of(to).contains(&from));
        }
    }

    #[test]
    fn parallel_edges_are_ignored() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let root = g.root();
        assert!(g.add_edge(root, a, EdgeKind::Tree));
        assert!(!g.add_edge(root, a, EdgeKind::Reference));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn nodes_with_label_finds_all() {
        let mut g = tiny();
        let a = g.intern("a");
        assert_eq!(g.nodes_with_label(a).len(), 2);
        let zed = g.intern("zed");
        assert!(g.nodes_with_label(zed).is_empty());
    }

    #[test]
    fn reference_edges_count_like_tree_edges() {
        let g = tiny();
        assert_eq!(g.edge_count(), 5);
        let b2 = NodeId::from_index(4);
        // b2 has two parents: its tree parent a2 and the referencing a.
        assert_eq!(g.parents_of(b2).len(), 2);
    }

    #[test]
    fn graft_under_root_copies_structure() {
        let mut g = tiny();
        let mut h = DataGraph::new();
        let c = h.add_labeled_node("c");
        let d = h.add_labeled_node("d");
        let hroot = h.root();
        h.add_edge(hroot, c, EdgeKind::Tree);
        h.add_edge(c, d, EdgeKind::Tree);

        let before_nodes = g.node_count();
        let map = g.graft_under_root(&h);

        assert_eq!(g.node_count(), before_nodes + 2);
        assert_eq!(map[hroot.index()], g.root());
        let new_c = map[c.index()];
        let new_d = map[d.index()];
        assert!(g.has_edge(g.root(), new_c));
        assert!(g.has_edge(new_c, new_d));
        assert_eq!(g.label_name(new_c), "c");
        assert_eq!(g.label_name(new_d), "d");
    }

    #[test]
    fn graft_reinterns_shared_labels() {
        let mut g = tiny();
        let mut h = DataGraph::new();
        let a = h.add_labeled_node("a"); // same name as in g
        let hroot = h.root();
        h.add_edge(hroot, a, EdgeKind::Tree);
        let map = g.graft_under_root(&h);
        let new_a = map[a.index()];
        assert_eq!(g.label_of(new_a), g.labels().get("a").unwrap());
    }

    #[test]
    fn node_ids_iterates_everything() {
        let g = tiny();
        let ids: Vec<NodeId> = g.node_ids().collect();
        assert_eq!(ids.len(), g.node_count());
        assert_eq!(ids[0], g.root());
        assert_eq!(g.node_ids().len(), g.node_count());
    }

    #[test]
    fn clones_share_segments_until_mutated() {
        let g = tiny();
        let mut h = g.clone();
        let (shared, total) = h.shared_segments_with(&g);
        assert_eq!(shared, total, "a fresh clone shares every segment");

        let x = h.add_labeled_node("x");
        let hroot = h.root();
        h.add_edge(hroot, x, EdgeKind::Tree);

        let (shared_after, _) = h.shared_segments_with(&g);
        assert!(shared_after < total, "mutation must unshare touched segments");
        // The original snapshot is untouched by the clone's mutation.
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.labels().get("x").is_none());
    }

    #[test]
    fn label_name_round_trip() {
        let g = tiny();
        assert_eq!(g.label_name(g.root()), "ROOT");
        assert_eq!(g.label_name(NodeId::from_index(1)), "a");
    }
}
