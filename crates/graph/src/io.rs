//! Binary serialization for data graphs.
//!
//! Format `DKG1` (all integers little-endian):
//!
//! ```text
//! magic   b"DKG1"
//! labels  u32 count, then per label: u16 byte-length + UTF-8 bytes
//! nodes   u32 count, then per node: u32 label id
//! edges   u32 count, then per edge: u32 from, u32 to, u8 kind (0 tree, 1 ref)
//! ```
//!
//! The distinguished `ROOT`/`VALUE` labels are serialized like any other and
//! validated on load (they must be labels 0 and 1, and node 0 must be the
//! root). Reading is strict: trailing bytes, dangling ids or a malformed
//! header are errors, never silent truncation.

use crate::graph::{DataGraph, EdgeKind, LabeledGraph, NodeId};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DKG1";

/// Error while reading a serialized graph.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the byte stream.
    Corrupt(String),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "I/O error: {e}"),
            ReadError::Corrupt(msg) => write!(f, "corrupt graph file: {msg}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> ReadError {
    ReadError::Corrupt(msg.into())
}

/// Write a little-endian `u32` (exposed for dependent on-disk formats).
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Read a little-endian `u32`.
pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, ReadError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Write a `u16`-length-prefixed UTF-8 string. Labels longer than
/// `u16::MAX` bytes (possible in adversarial XML input) are an
/// `InvalidInput` error, never a panic.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let len = u16::try_from(s.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("label of {} bytes exceeds the format's u16 limit", s.len()),
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(s.as_bytes())
}

/// Read a `u16`-length-prefixed UTF-8 string.
pub fn read_str<R: Read>(r: &mut R) -> Result<String, ReadError> {
    let mut len_buf = [0u8; 2];
    r.read_exact(&mut len_buf)?;
    let len = u16::from_le_bytes(len_buf) as usize;
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| corrupt("label is not UTF-8"))
}

/// Serialize `g` to `w`.
pub fn write_graph<W: Write>(g: &DataGraph, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, g.labels().len() as u32)?;
    for (_, name) in g.labels().iter() {
        write_str(w, name)?;
    }
    write_u32(w, g.node_count() as u32)?;
    for n in g.node_ids() {
        write_u32(w, g.label_of(n).index() as u32)?;
    }
    write_u32(w, g.edge_count() as u32)?;
    for &(from, to, kind) in g.edges() {
        write_u32(w, from.index() as u32)?;
        write_u32(w, to.index() as u32)?;
        w.write_all(&[match kind {
            EdgeKind::Tree => 0,
            EdgeKind::Reference => 1,
        }])?;
    }
    Ok(())
}

/// Deserialize a graph from `r`. The stream must be exhausted exactly.
pub fn read_graph<R: Read>(r: &mut R) -> Result<DataGraph, ReadError> {
    let g = read_graph_allow_trailing(r)?;
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(g),
        _ => Err(corrupt("trailing bytes after graph")),
    }
}

/// Deserialize a graph, leaving any bytes after the graph payload unread
/// (for container formats that append further sections).
pub fn read_graph_allow_trailing<R: Read>(r: &mut R) -> Result<DataGraph, ReadError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic (expected DKG1)"));
    }
    let label_count = read_u32(r)? as usize;
    if label_count < 2 {
        return Err(corrupt("label table must contain ROOT and VALUE"));
    }
    let mut g = DataGraph::new();
    for i in 0..label_count {
        let name = read_str(r)?;
        match i {
            0 if name != "ROOT" => return Err(corrupt("label 0 must be ROOT")),
            1 if name != "VALUE" => return Err(corrupt("label 1 must be VALUE")),
            _ => {}
        }
        let id = g.intern(&name);
        if id.index() != i {
            return Err(corrupt(format!("duplicate label {name:?}")));
        }
    }
    let node_count = read_u32(r)? as usize;
    if node_count == 0 {
        return Err(corrupt("graph has no root node"));
    }
    for i in 0..node_count {
        let label = read_u32(r)? as usize;
        if label >= label_count {
            return Err(corrupt(format!("node {i}: label id {label} out of range")));
        }
        if i == 0 {
            if label != 0 {
                return Err(corrupt("node 0 must carry the ROOT label"));
            }
            continue; // the root already exists
        }
        g.add_node(crate::label::LabelId::from_index(label));
    }
    let edge_count = read_u32(r)? as usize;
    for _ in 0..edge_count {
        let from = read_u32(r)? as usize;
        let to = read_u32(r)? as usize;
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        if from >= node_count || to >= node_count {
            return Err(corrupt("edge endpoint out of range"));
        }
        let kind = match kind[0] {
            0 => EdgeKind::Tree,
            1 => EdgeKind::Reference,
            other => return Err(corrupt(format!("unknown edge kind {other}"))),
        };
        g.add_edge(NodeId::from_index(from), NodeId::from_index(to), kind);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataGraph {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(b, a, EdgeKind::Reference);
        g
    }

    fn round_trip(g: &DataGraph) -> DataGraph {
        let mut bytes = Vec::new();
        write_graph(g, &mut bytes).unwrap();
        read_graph(&mut bytes.as_slice()).unwrap()
    }

    #[test]
    fn graph_round_trips() {
        let g = sample();
        let back = round_trip(&g);
        assert_eq!(back.node_count(), g.node_count());
        assert!(back.edges().eq(g.edges()));
        for n in g.node_ids() {
            assert_eq!(back.label_name(n), g.label_name(n));
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = DataGraph::new();
        let back = round_trip(&g);
        assert_eq!(back.node_count(), 1);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Vec::new();
        write_graph(&sample(), &mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            read_graph(&mut bytes.as_slice()),
            Err(ReadError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut bytes = Vec::new();
        write_graph(&sample(), &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(read_graph(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Vec::new();
        write_graph(&sample(), &mut bytes).unwrap();
        bytes.push(0);
        assert!(matches!(
            read_graph(&mut bytes.as_slice()),
            Err(ReadError::Corrupt(msg)) if msg.contains("trailing")
        ));
    }

    #[test]
    fn allow_trailing_leaves_suffix_unread() {
        let mut bytes = Vec::new();
        write_graph(&sample(), &mut bytes).unwrap();
        bytes.extend_from_slice(b"suffix");
        let mut cursor = std::io::Cursor::new(&bytes);
        let g = read_graph_allow_trailing(&mut cursor).unwrap();
        assert_eq!(g.node_count(), 3);
        let mut rest = Vec::new();
        std::io::Read::read_to_end(&mut cursor, &mut rest).unwrap();
        assert_eq!(rest, b"suffix");
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let mut g = DataGraph::new();
        g.add_labeled_node("a");
        let mut bytes = Vec::new();
        write_graph(&g, &mut bytes).unwrap();
        // Append a fake edge count region by rebuilding manually is complex;
        // instead corrupt the stored edge count upward.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&1u32.to_le_bytes());
        assert!(read_graph(&mut bytes.as_slice()).is_err());
    }
}
