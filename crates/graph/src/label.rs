//! Label interning.
//!
//! Every node in a data graph carries a *label* (an element tag such as
//! `movie`, or one of the two distinguished labels `ROOT` and `VALUE` from the
//! paper's data model, §3). Algorithms never compare label strings; they
//! compare small dense [`LabelId`]s handed out by a [`LabelInterner`].

use std::collections::HashMap;
use std::fmt;

/// Dense identifier for an interned label string.
///
/// `LabelId`s are allocated contiguously from zero by a [`LabelInterner`], so
/// they can index per-label arrays (e.g. the similarity-requirement table used
/// by the D(k) broadcast algorithm).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub(crate) u32);

impl LabelId {
    /// Numeric index of this label, suitable for indexing `Vec`s sized by
    /// [`LabelInterner::len`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a `LabelId` from an index previously obtained through
    /// [`LabelId::index`]. The caller must ensure the index is in range for
    /// the interner it will be used with.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        LabelId(index as u32)
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// The distinguished label of the single root node (paper §3).
pub const ROOT_LABEL: &str = "ROOT";
/// The distinguished label given to simple (atomic) value nodes (paper §3).
pub const VALUE_LABEL: &str = "VALUE";

/// A bidirectional map between label strings and dense [`LabelId`]s.
///
/// The interner always contains `ROOT` (id 0) and `VALUE` (id 1) so that the
/// distinguished labels of the data model have stable, well-known ids.
#[derive(Clone, Debug)]
pub struct LabelInterner {
    names: Vec<Box<str>>,
    ids: HashMap<Box<str>, LabelId>,
}

impl LabelInterner {
    /// `LabelId` of the distinguished `ROOT` label.
    pub const ROOT: LabelId = LabelId(0);
    /// `LabelId` of the distinguished `VALUE` label.
    pub const VALUE: LabelId = LabelId(1);

    /// Create an interner pre-seeded with the two distinguished labels.
    pub fn new() -> Self {
        let mut interner = LabelInterner {
            names: Vec::new(),
            ids: HashMap::new(),
        };
        let root = interner.intern(ROOT_LABEL);
        let value = interner.intern(VALUE_LABEL);
        debug_assert_eq!(root, Self::ROOT);
        debug_assert_eq!(value, Self::VALUE);
        interner
    }

    /// Intern `name`, returning its id (existing or freshly allocated).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = LabelId(u32::try_from(self.names.len()).expect("too many labels"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// Look up an already-interned label without allocating.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.ids.get(name).copied()
    }

    /// The string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not allocated by this interner.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels interned so far (including `ROOT`/`VALUE`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when only the two distinguished labels are present.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 2
    }

    /// Iterate over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(i as u32), n.as_ref()))
    }
}

impl Default for LabelInterner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguished_labels_have_stable_ids() {
        let interner = LabelInterner::new();
        assert_eq!(interner.get(ROOT_LABEL), Some(LabelInterner::ROOT));
        assert_eq!(interner.get(VALUE_LABEL), Some(LabelInterner::VALUE));
        assert_eq!(interner.name(LabelInterner::ROOT), "ROOT");
        assert_eq!(interner.name(LabelInterner::VALUE), "VALUE");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut interner = LabelInterner::new();
        let a1 = interner.intern("movie");
        let a2 = interner.intern("movie");
        assert_eq!(a1, a2);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn intern_allocates_dense_ids() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let c = interner.intern("c");
        assert_eq!(a.index(), 2);
        assert_eq!(b.index(), 3);
        assert_eq!(c.index(), 4);
    }

    #[test]
    fn get_does_not_allocate() {
        let interner = LabelInterner::new();
        assert_eq!(interner.get("nope"), None);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut interner = LabelInterner::new();
        interner.intern("x");
        interner.intern("y");
        let names: Vec<&str> = interner.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["ROOT", "VALUE", "x", "y"]);
    }

    #[test]
    fn label_id_round_trips_through_index() {
        let mut interner = LabelInterner::new();
        let id = interner.intern("director");
        assert_eq!(LabelId::from_index(id.index()), id);
    }

    #[test]
    fn is_empty_reflects_user_labels() {
        let mut interner = LabelInterner::new();
        assert!(interner.is_empty());
        interner.intern("movie");
        assert!(!interner.is_empty());
    }
}
