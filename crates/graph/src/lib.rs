//! # dkindex-graph
//!
//! The data model shared by every crate in the D(k)-index reproduction: a
//! rooted, directed, node-labeled graph representing XML or other
//! semi-structured data (paper §3).
//!
//! * [`DataGraph`] — the graph itself, with forward *and* backward adjacency
//!   (bisimulation looks at incoming paths, queries follow outgoing edges).
//! * [`LabeledGraph`] — the read-only trait implemented by both [`DataGraph`]
//!   and the index graphs in `dkindex-core`, so evaluation and refinement are
//!   reusable across data and summary graphs.
//! * [`LabelInterner`] / [`LabelId`] — dense label interning with the
//!   distinguished `ROOT` and `VALUE` labels.
//! * [`traversal`] — BFS/DFS, depth maps and incoming-label-path enumeration
//!   (the raw material of the k-bisimilarity properties).
//! * [`Marks`] — epoch-stamped visited flags shared by every hot traversal
//!   loop in the workspace (O(1) clear, zero steady-state allocation).
//! * [`SegVec`] — the persistent, segment-shared vector backing
//!   [`DataGraph`] storage, so cloning a graph is a copy-on-write snapshot
//!   (the delta-epoch publish path in `dkindex-core` builds on this).
//! * [`dot`] — GraphViz export in the style of the paper's Figure 1.
//! * [`stats`] — dataset shape reporting for the experiment harness.
//!
//! ## Example
//!
//! ```
//! use dkindex_graph::{DataGraph, EdgeKind, LabeledGraph};
//!
//! let mut g = DataGraph::new();
//! let movie = g.add_labeled_node("movie");
//! let title = g.add_labeled_node("title");
//! let root = g.root();
//! g.add_edge(root, movie, EdgeKind::Tree);
//! g.add_edge(movie, title, EdgeKind::Tree);
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.label_name(title), "title");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod label;
mod marks;

pub mod dot;
pub mod io;
pub mod segvec;
pub mod stats;
pub mod traversal;

pub use graph::{DataGraph, EdgeKind, LabeledGraph, NodeId, NodeIds};
pub use label::{LabelId, LabelInterner, ROOT_LABEL, VALUE_LABEL};
pub use marks::Marks;
pub use segvec::SegVec;
