//! Epoch-stamped visited marks: a reusable replacement for the
//! `vec![false; n]` idiom in hot traversal loops.
//!
//! A [`Marks`] holds one `u32` stamp per slot and a current epoch. Clearing
//! all marks is a single epoch increment — O(1) instead of re-zeroing the
//! whole vector — so a long batch of traversals over the same graph performs
//! no steady-state allocation and no per-traversal memset. The evaluation
//! arena in `dkindex-pathexpr` and the traversal helpers in this crate both
//! build on it.

/// Reusable set of visited flags over dense `usize` ids.
///
/// ```
/// use dkindex_graph::Marks;
///
/// let mut m = Marks::new();
/// m.reset(10);
/// assert!(m.mark(3)); // newly marked
/// assert!(!m.mark(3)); // already marked
/// m.reset(10); // O(1): bumps the epoch, no re-zeroing
/// assert!(!m.is_marked(3));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Marks {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Marks {
    /// Empty mark set; call [`reset`](Self::reset) before use.
    pub fn new() -> Self {
        Marks::default()
    }

    /// Begin a fresh traversal over ids `0..n`: every slot becomes unmarked.
    ///
    /// Grows the backing store on first use (or when `n` exceeds the previous
    /// capacity); afterwards this is just an epoch bump.
    pub fn reset(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrapped: re-zero once every 2^32 - 1 resets.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Mark slot `i`; returns `true` iff it was unmarked before.
    #[inline]
    pub fn mark(&mut self, i: usize) -> bool {
        let slot = &mut self.stamp[i];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Is slot `i` marked in the current epoch?
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// Number of addressable slots in the current epoch's backing store.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_reports_first_visit_only() {
        let mut m = Marks::new();
        m.reset(4);
        assert!(m.mark(0));
        assert!(m.mark(3));
        assert!(!m.mark(0));
        assert!(m.is_marked(0) && m.is_marked(3));
        assert!(!m.is_marked(1));
    }

    #[test]
    fn reset_clears_without_rezeroing() {
        let mut m = Marks::new();
        m.reset(3);
        m.mark(1);
        m.reset(3);
        assert!(!m.is_marked(1));
        assert!(m.mark(1));
    }

    #[test]
    fn reset_grows_capacity() {
        let mut m = Marks::new();
        m.reset(2);
        m.mark(1);
        m.reset(5);
        assert!(m.mark(4));
        assert!(!m.is_marked(1));
        assert!(m.capacity() >= 5);
    }

    #[test]
    fn epoch_wraparound_stays_correct() {
        let mut m = Marks::new();
        m.reset(2);
        m.mark(0);
        m.epoch = u32::MAX - 1;
        // Slot stamped at an old epoch is unmarked in later epochs.
        m.reset(2);
        assert!(!m.is_marked(0));
        m.mark(1);
        m.reset(2); // crosses the wraparound re-zero path
        assert!(!m.is_marked(1));
        assert!(m.mark(1));
    }
}
