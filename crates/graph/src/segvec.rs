//! `SegVec`: a persistent, segment-shared vector — the copy-on-write
//! storage primitive behind delta epochs.
//!
//! A [`SegVec<T>`] stores its elements in fixed-size segments of
//! [`SEG_SIZE`] elements, each behind an [`Arc`]. Cloning a `SegVec` is a
//! shallow copy — one refcount bump per segment — and mutating an element
//! copies **only the one segment it lives in** (via [`Arc::make_mut`]),
//! leaving every other segment pointer-shared with the clones. Two
//! consecutive epochs of a graph built on `SegVec` storage therefore share
//! all state a maintenance batch did not touch, which is what makes an
//! epoch publish O(touched) instead of O(graph).
//!
//! ## COW invariants
//!
//! 1. **Clone is shallow**: `clone()` never copies elements, only segment
//!    handles.
//! 2. **Mutation is localized**: a write through [`SegVec::get_mut`] or
//!    [`SegVec::push`] deep-copies at most one segment, and only when that
//!    segment is shared (`Arc` refcount > 1).
//! 3. **Sharing is observable**: [`SegVec::shared_segments_with`] counts
//!    positionally pointer-equal segments, so tests can assert that a
//!    representation change really shares instead of re-copying.
//! 4. **Representation never leaks into answers**: iteration order and
//!    element values are identical to a flat `Vec<T>` with the same
//!    contents; equality compares contents, never pointers.
//!
//! This module is in the `dkindex-analyze` `panic-path` and
//! `nondeterministic-iter` scopes: every accessor is `Option`-returning
//! (no indexing, no `unwrap`), and iteration follows declared element
//! order only.

use std::fmt;
use std::sync::Arc;

/// log2 of [`SEG_SIZE`].
const SEG_SHIFT: usize = 6;
/// Elements per segment. 64 keeps a segment within a cache line or two for
/// small `T` while making a shallow clone of a million-element vector cost
/// ~16k refcount bumps instead of a million element copies.
pub const SEG_SIZE: usize = 1 << SEG_SHIFT;
const SEG_MASK: usize = SEG_SIZE - 1;

/// A chunked vector whose segments are `Arc`-shared between clones and
/// copied on write. See the module docs for the COW invariants.
pub struct SegVec<T> {
    /// Every segment except the last holds exactly [`SEG_SIZE`] elements;
    /// the last holds `len - (segments.len() - 1) * SEG_SIZE`.
    segments: Vec<Arc<Vec<T>>>,
    len: usize,
}

impl<T> SegVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        SegVec {
            segments: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element at `index`, or `None` when out of range.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        self.segments.get(index >> SEG_SHIFT)?.get(index & SEG_MASK)
    }

    /// Iterate the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.segments.iter().flat_map(|s| s.iter())
    }

    /// Number of segments currently backing the vector.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Count of segments positionally pointer-shared with `other` — the
    /// structural-sharing census used by the delta-epoch tests and the
    /// publish counters. A segment counts when slot `i` of both vectors is
    /// the **same allocation** (`Arc::ptr_eq`), i.e. neither side copied it
    /// since they diverged.
    pub fn shared_segments_with(&self, other: &SegVec<T>) -> usize {
        self.segments
            .iter()
            .zip(other.segments.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

impl<T: Clone> SegVec<T> {
    /// Mutable access to the element at `index`, or `None` when out of
    /// range. Copies the containing segment first when it is shared with
    /// another `SegVec` (COW invariant 2); all other segments stay shared.
    #[inline]
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if index >= self.len {
            return None;
        }
        let segment = self.segments.get_mut(index >> SEG_SHIFT)?;
        Arc::make_mut(segment).get_mut(index & SEG_MASK)
    }

    /// Append an element, copying at most the trailing segment.
    pub fn push(&mut self, value: T) {
        if self.len & SEG_MASK == 0 {
            self.segments.push(Arc::new(Vec::with_capacity(SEG_SIZE)));
        }
        if let Some(last) = self.segments.last_mut() {
            Arc::make_mut(last).push(value);
            self.len += 1;
        }
    }

    /// Grow or shrink to exactly `new_len` elements, filling new slots with
    /// clones of `value`.
    pub fn resize(&mut self, new_len: usize, value: T) {
        while self.len < new_len {
            self.push(value.clone());
        }
        if new_len < self.len {
            let keep_segments = new_len.div_ceil(SEG_SIZE);
            self.segments.truncate(keep_segments);
            let tail = new_len & SEG_MASK;
            if tail != 0 {
                if let Some(last) = self.segments.last_mut() {
                    Arc::make_mut(last).truncate(tail);
                }
            }
            self.len = new_len;
        }
    }
}

/// Shallow clone: one refcount bump per segment, zero element copies
/// (COW invariant 1). Written by hand so `SegVec<T>: Clone` holds without
/// requiring `T: Clone`.
impl<T> Clone for SegVec<T> {
    fn clone(&self) -> Self {
        SegVec {
            segments: self.segments.clone(),
            len: self.len,
        }
    }
}

impl<T> Default for SegVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> FromIterator<T> for SegVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SegVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Clone> Extend<T> for SegVec<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

/// Content equality — representation (segment boundaries, sharing) never
/// participates (COW invariant 4).
impl<T: PartialEq> PartialEq for SegVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for SegVec<T> {}

/// `Debug` as a flat element list, hiding the segmentation.
impl<T: fmt::Debug> fmt::Debug for SegVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize) -> SegVec<usize> {
        (0..n).collect()
    }

    #[test]
    fn push_get_len_round_trip() {
        let v = filled(3 * SEG_SIZE + 7);
        assert_eq!(v.len(), 3 * SEG_SIZE + 7);
        assert_eq!(v.segment_count(), 4);
        for i in 0..v.len() {
            assert_eq!(v.get(i), Some(&i));
        }
        assert_eq!(v.get(v.len()), None);
    }

    #[test]
    fn iter_matches_index_order() {
        let v = filled(2 * SEG_SIZE + 1);
        let collected: Vec<usize> = v.iter().copied().collect();
        let expected: Vec<usize> = (0..v.len()).collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn clone_shares_every_segment() {
        let v = filled(5 * SEG_SIZE);
        let w = v.clone();
        assert_eq!(w.shared_segments_with(&v), v.segment_count());
        assert_eq!(v, w);
    }

    #[test]
    fn mutation_copies_only_the_touched_segment() {
        let v = filled(4 * SEG_SIZE);
        let mut w = v.clone();
        *w.get_mut(SEG_SIZE + 3).unwrap() = 999;
        // Exactly one segment diverged.
        assert_eq!(w.shared_segments_with(&v), v.segment_count() - 1);
        // The original is untouched.
        assert_eq!(v.get(SEG_SIZE + 3), Some(&(SEG_SIZE + 3)));
        assert_eq!(w.get(SEG_SIZE + 3), Some(&999));
    }

    #[test]
    fn push_after_clone_copies_only_the_tail_segment() {
        let v = filled(2 * SEG_SIZE + 5);
        let mut w = v.clone();
        w.push(12345);
        assert_eq!(w.shared_segments_with(&v), v.segment_count() - 1);
        assert_eq!(v.len(), 2 * SEG_SIZE + 5);
        assert_eq!(w.len(), 2 * SEG_SIZE + 6);
    }

    #[test]
    fn push_on_a_full_boundary_allocates_a_fresh_segment() {
        let v = filled(SEG_SIZE);
        let mut w = v.clone();
        w.push(777);
        // The old segment stays fully shared; only the new one is unshared.
        assert_eq!(w.shared_segments_with(&v), 1);
        assert_eq!(w.segment_count(), 2);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut v = filled(10);
        v.resize(SEG_SIZE + 2, 42);
        assert_eq!(v.len(), SEG_SIZE + 2);
        assert_eq!(v.get(10), Some(&42));
        assert_eq!(v.get(SEG_SIZE + 1), Some(&42));
        v.resize(5, 0);
        assert_eq!(v.len(), 5);
        assert_eq!(v.get(4), Some(&4));
        assert_eq!(v.get(5), None);
        v.resize(SEG_SIZE, 1);
        assert_eq!(v.len(), SEG_SIZE);
        assert_eq!(v.get(5), Some(&1));
    }

    #[test]
    fn resize_to_segment_boundary_truncates_cleanly() {
        let mut v = filled(2 * SEG_SIZE + 9);
        v.resize(SEG_SIZE, 0);
        assert_eq!(v.len(), SEG_SIZE);
        assert_eq!(v.segment_count(), 1);
        assert_eq!(v.get(SEG_SIZE - 1), Some(&(SEG_SIZE - 1)));
    }

    #[test]
    fn equality_ignores_segmentation_history() {
        let pushed = filled(SEG_SIZE + 3);
        let mut resized: SegVec<usize> = SegVec::new();
        resized.resize(SEG_SIZE + 3, 0);
        for i in 0..resized.len() {
            *resized.get_mut(i).unwrap() = i;
        }
        assert_eq!(pushed, resized);
    }

    #[test]
    fn get_mut_out_of_range_is_none() {
        let mut v = filled(3);
        assert!(v.get_mut(3).is_none());
        assert!(v.get_mut(usize::MAX).is_none());
    }

    #[test]
    fn debug_prints_flat_contents() {
        let v: SegVec<u32> = [1u32, 2, 3].into_iter().collect();
        assert_eq!(format!("{v:?}"), "[1, 2, 3]");
    }
}
