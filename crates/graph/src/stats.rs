//! Summary statistics for data graphs, used by the experiment harness to
//! report dataset shapes (node/edge counts, reference density, depth, label
//! histogram) alongside each reproduced figure.

use crate::graph::{DataGraph, EdgeKind, LabeledGraph};
use crate::traversal::depth_from_root;
use std::fmt;

/// Aggregate shape statistics for a [`DataGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Total node count, including the root.
    pub nodes: usize,
    /// Total directed edge count.
    pub edges: usize,
    /// Number of reference (non-tree) edges.
    pub reference_edges: usize,
    /// Number of distinct labels (including `ROOT`/`VALUE`).
    pub labels: usize,
    /// Maximum shortest-path depth over reachable nodes.
    pub max_depth: usize,
    /// Nodes unreachable from the root (should be 0 for well-formed data).
    pub unreachable: usize,
}

impl GraphStats {
    /// Compute statistics for `g` in O(n + m).
    pub fn of(g: &DataGraph) -> Self {
        let depth = depth_from_root(g);
        let max_depth = depth.iter().flatten().copied().max().unwrap_or(0);
        let unreachable = depth.iter().filter(|d| d.is_none()).count();
        let reference_edges = g
            .edges()
            .filter(|&&(_, _, k)| k == EdgeKind::Reference)
            .count();
        GraphStats {
            nodes: g.node_count(),
            edges: g.edge_count(),
            reference_edges,
            labels: g.labels().len(),
            max_depth,
            unreachable,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} edges ({} refs), {} labels, depth {}",
            self.nodes, self.edges, self.reference_edges, self.labels, self.max_depth
        )
    }
}

/// Per-label node counts, sorted by descending frequency.
pub fn label_histogram(g: &DataGraph) -> Vec<(String, usize)> {
    let mut counts = vec![0usize; g.labels().len()];
    for n in g.node_ids() {
        counts[g.label_of(n).index()] += 1;
    }
    let mut hist: Vec<(String, usize)> = g
        .labels()
        .iter()
        .map(|(id, name)| (name.to_string(), counts[id.index()]))
        .filter(|&(_, c)| c > 0)
        .collect();
    hist.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataGraph, EdgeKind};

    fn sample() -> DataGraph {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b1 = g.add_labeled_node("b");
        let b2 = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b1, EdgeKind::Tree);
        g.add_edge(a, b2, EdgeKind::Tree);
        g.add_edge(b1, b2, EdgeKind::Reference);
        g
    }

    #[test]
    fn stats_count_everything() {
        let s = GraphStats::of(&sample());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.reference_edges, 1);
        assert_eq!(s.labels, 4); // ROOT, VALUE, a, b
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.unreachable, 0);
    }

    #[test]
    fn stats_detect_unreachable_nodes() {
        let mut g = sample();
        g.add_labeled_node("orphan");
        assert_eq!(GraphStats::of(&g).unreachable, 1);
    }

    #[test]
    fn histogram_sorted_by_frequency() {
        let hist = label_histogram(&sample());
        assert_eq!(hist[0], ("b".to_string(), 2));
        // VALUE never used, so it is filtered out.
        assert!(hist.iter().all(|(n, _)| n != "VALUE"));
    }

    #[test]
    fn display_is_human_readable() {
        let s = GraphStats::of(&sample());
        let text = s.to_string();
        assert!(text.contains("4 nodes"));
        assert!(text.contains("1 refs"));
    }
}
