//! Graph traversal utilities: BFS/DFS orders, depth maps, reachability, and
//! the *incoming label-path* machinery that underpins bisimilarity checks
//! (paper §3: "if two nodes are bisimilar, the set of paths coming into them
//! is the same").

use crate::graph::{LabeledGraph, NodeId};
use crate::label::LabelId;
use crate::marks::Marks;
use std::collections::{HashSet, VecDeque};

/// Nodes of `g` in breadth-first order from `start`.
pub fn bfs_order<G: LabeledGraph>(g: &G, start: NodeId) -> Vec<NodeId> {
    bfs_order_with(g, start, &mut Marks::new())
}

/// [`bfs_order`] reusing caller-owned visited marks across calls.
pub fn bfs_order_with<G: LabeledGraph>(g: &G, start: NodeId, seen: &mut Marks) -> Vec<NodeId> {
    seen.reset(g.node_count());
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen.mark(start.index());
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for &c in g.children_of(n) {
            if seen.mark(c.index()) {
                queue.push_back(c);
            }
        }
    }
    order
}

/// Nodes of `g` in depth-first (preorder) order from `start`.
pub fn dfs_order<G: LabeledGraph>(g: &G, start: NodeId) -> Vec<NodeId> {
    dfs_order_with(g, start, &mut Marks::new())
}

/// [`dfs_order`] reusing caller-owned visited marks across calls.
pub fn dfs_order_with<G: LabeledGraph>(g: &G, start: NodeId, seen: &mut Marks) -> Vec<NodeId> {
    seen.reset(g.node_count());
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        if !seen.mark(n.index()) {
            continue;
        }
        order.push(n);
        // Push children in reverse so the leftmost child is visited first.
        for &c in g.children_of(n).iter().rev() {
            stack.push(c);
        }
    }
    order
}

/// Shortest distance (in edges) from the root to every node; `None` for
/// unreachable nodes.
pub fn depth_from_root<G: LabeledGraph>(g: &G) -> Vec<Option<usize>> {
    let mut depth = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    depth[g.root().index()] = Some(0);
    queue.push_back(g.root());
    while let Some(n) = queue.pop_front() {
        let d = depth[n.index()].expect("queued nodes have depth");
        for &c in g.children_of(n) {
            if depth[c.index()].is_none() {
                depth[c.index()] = Some(d + 1);
                queue.push_back(c);
            }
        }
    }
    depth
}

/// Set of nodes reachable from `start` (including `start`).
pub fn reachable_from<G: LabeledGraph>(g: &G, start: NodeId) -> HashSet<NodeId> {
    bfs_order(g, start).into_iter().collect()
}

/// Does some node path ending in `node` match the label path `labels`
/// (paper §3's "a label path matches a node")?
///
/// Checked by walking *backward* from `node`: `labels[last]` must equal
/// `node`'s label, `labels[last-1]` some parent's label, and so on. Runs in
/// O(|labels| · m) worst case via a frontier of candidate nodes.
pub fn label_path_matches<G: LabeledGraph>(g: &G, labels: &[LabelId], node: NodeId) -> bool {
    let Some((&last, rest)) = labels.split_last() else {
        return true; // The empty label path matches every node.
    };
    if g.label_of(node) != last {
        return false;
    }
    let mut frontier: HashSet<NodeId> = HashSet::new();
    frontier.insert(node);
    for &want in rest.iter().rev() {
        let mut next = HashSet::new();
        for &n in &frontier {
            for &p in g.parents_of(n) {
                if g.label_of(p) == want {
                    next.insert(p);
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        frontier = next;
    }
    true
}

/// All distinct label paths of length exactly `len` that come into `node`.
///
/// Exponential in the worst case; intended for tests and validation on small
/// neighborhoods (the A(k)/D(k) soundness properties quantify over these
/// sets). Paths are returned sorted and deduplicated.
pub fn incoming_label_paths<G: LabeledGraph>(
    g: &G,
    node: NodeId,
    len: usize,
) -> Vec<Vec<LabelId>> {
    // Frontier of (node, reversed-suffix) pairs grown backward.
    let mut paths: HashSet<(NodeId, Vec<LabelId>)> = HashSet::new();
    paths.insert((node, vec![g.label_of(node)]));
    for _ in 1..len.max(1) {
        let mut next = HashSet::new();
        for (n, suffix) in &paths {
            for &p in g.parents_of(*n) {
                let mut ext = Vec::with_capacity(suffix.len() + 1);
                ext.push(g.label_of(p));
                ext.extend_from_slice(suffix);
                next.insert((p, ext));
            }
        }
        paths = next;
        if paths.is_empty() {
            break;
        }
    }
    let mut out: Vec<Vec<LabelId>> = if len == 0 {
        vec![Vec::new()]
    } else {
        paths.into_iter().map(|(_, p)| p).collect()
    };
    out.sort();
    out.dedup();
    out
}

/// All distinct label paths of length `<= max_len` into `node`, including the
/// empty path. Useful for checking the A(k) property "the set of label paths
/// of length ≤ k into k-bisimilar nodes is the same".
pub fn incoming_label_paths_up_to<G: LabeledGraph>(
    g: &G,
    node: NodeId,
    max_len: usize,
) -> Vec<Vec<LabelId>> {
    let mut all = Vec::new();
    for len in 0..=max_len {
        all.extend(incoming_label_paths(g, node, len));
    }
    all.sort();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataGraph, EdgeKind};

    /// ROOT -> x(a) -> y(b) -> z(c); ROOT -> w(b)
    fn chain() -> (DataGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = DataGraph::new();
        let x = g.add_labeled_node("a");
        let y = g.add_labeled_node("b");
        let z = g.add_labeled_node("c");
        let w = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, x, EdgeKind::Tree);
        g.add_edge(x, y, EdgeKind::Tree);
        g.add_edge(y, z, EdgeKind::Tree);
        g.add_edge(r, w, EdgeKind::Tree);
        (g, x, y, z, w)
    }

    #[test]
    fn bfs_visits_every_reachable_node_once() {
        let (g, ..) = chain();
        let order = bfs_order(&g, g.root());
        assert_eq!(order.len(), g.node_count());
        let set: HashSet<_> = order.iter().collect();
        assert_eq!(set.len(), order.len());
        assert_eq!(order[0], g.root());
    }

    #[test]
    fn dfs_preorder_starts_at_root_and_covers_graph() {
        let (g, x, y, z, _) = chain();
        let order = dfs_order(&g, g.root());
        assert_eq!(order.len(), g.node_count());
        // x precedes y precedes z (single path).
        let pos = |n: NodeId| order.iter().position(|&m| m == n).unwrap();
        assert!(pos(x) < pos(y) && pos(y) < pos(z));
    }

    #[test]
    fn depth_from_root_measures_shortest_paths() {
        let (mut g, x, _, z, w) = chain();
        assert_eq!(depth_from_root(&g)[z.index()], Some(3));
        assert_eq!(depth_from_root(&g)[w.index()], Some(1));
        // A shortcut edge root -> z shortens z's depth to 1.
        let r = g.root();
        g.add_edge(r, z, EdgeKind::Reference);
        assert_eq!(depth_from_root(&g)[z.index()], Some(1));
        assert_eq!(depth_from_root(&g)[x.index()], Some(1));
    }

    #[test]
    fn unreachable_nodes_have_no_depth() {
        let mut g = DataGraph::new();
        let orphan = g.add_labeled_node("o");
        assert_eq!(depth_from_root(&g)[orphan.index()], None);
    }

    #[test]
    fn reachable_from_subtree() {
        let (g, x, y, z, w) = chain();
        let from_x = reachable_from(&g, x);
        assert!(from_x.contains(&x) && from_x.contains(&y) && from_x.contains(&z));
        assert!(!from_x.contains(&w) && !from_x.contains(&g.root()));
    }

    #[test]
    fn label_path_matches_full_chain() {
        let (g, _, _, z, _) = chain();
        let l = |s: &str| g.labels().get(s).unwrap();
        assert!(label_path_matches(&g, &[l("a"), l("b"), l("c")], z));
        assert!(label_path_matches(&g, &[l("b"), l("c")], z));
        assert!(label_path_matches(&g, &[l("c")], z));
        assert!(!label_path_matches(&g, &[l("b"), l("a"), l("c")], z));
        assert!(!label_path_matches(&g, &[l("a")], z));
    }

    #[test]
    fn empty_label_path_matches_anything() {
        let (g, x, ..) = chain();
        assert!(label_path_matches(&g, &[], x));
    }

    #[test]
    fn incoming_label_paths_enumerates_exact_lengths() {
        let (g, _, y, _, w) = chain();
        let l = |s: &str| g.labels().get(s).unwrap();
        let root = crate::label::LabelInterner::ROOT;
        assert_eq!(incoming_label_paths(&g, y, 1), vec![vec![l("b")]]);
        assert_eq!(incoming_label_paths(&g, y, 2), vec![vec![l("a"), l("b")]]);
        // w's length-2 incoming path goes through ROOT.
        assert_eq!(incoming_label_paths(&g, w, 2), vec![vec![root, l("b")]]);
        // Longer than any path into w: empty set.
        assert!(incoming_label_paths(&g, w, 3).is_empty());
    }

    #[test]
    fn incoming_label_paths_up_to_includes_all_lengths() {
        let (g, _, y, _, _) = chain();
        let paths = incoming_label_paths_up_to(&g, y, 2);
        // empty path, [b], [a,b]
        assert_eq!(paths.len(), 3);
        assert!(paths.contains(&Vec::new()));
    }

    #[test]
    fn incoming_paths_merge_across_multiple_parents() {
        // Two parents with different labels both reach the same child.
        let mut g = DataGraph::new();
        let p1 = g.add_labeled_node("p");
        let p2 = g.add_labeled_node("q");
        let c = g.add_labeled_node("c");
        let r = g.root();
        g.add_edge(r, p1, EdgeKind::Tree);
        g.add_edge(r, p2, EdgeKind::Tree);
        g.add_edge(p1, c, EdgeKind::Tree);
        g.add_edge(p2, c, EdgeKind::Reference);
        let paths = incoming_label_paths(&g, c, 2);
        assert_eq!(paths.len(), 2);
    }
}
