//! # dkindex-loom
//!
//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker.
//! The build environment has no reachable crates registry, so instead of
//! loom's instrumented `std` types this crate model-checks a protocol the
//! way one would write it on paper: each thread is an ordered list of
//! **atomic steps** over a shared, cloneable model state, and [`explore`]
//! enumerates **every** interleaving of those steps by depth-first search,
//! running an invariant after each step and a final check after each
//! complete schedule.
//!
//! This is sound for protocols whose shared accesses are all
//! lock-protected (no raw atomics with relaxed orderings): a critical
//! section modeled as one step observes exactly the states a sequentially
//! consistent execution could produce. The `core::serve` epoch protocol is
//! such a protocol — every shared access goes through `RwLock`, `Mutex`,
//! or an mpsc channel — so exhaustive step interleaving covers the same
//! schedule space loom would explore for it.
//!
//! ```
//! use dkindex_loom::{explore, thread, Explored};
//!
//! #[derive(Clone, Default)]
//! struct Counter { value: u32 }
//!
//! let result = explore(
//!     &Counter::default(),
//!     vec![
//!         thread("incr-a", vec![Box::new(|s: &mut Counter| s.value += 1)]),
//!         thread("incr-b", vec![Box::new(|s: &mut Counter| s.value += 1)]),
//!     ],
//!     |_s| Ok(()),
//!     |s| if s.value == 2 { Ok(()) } else { Err("lost update".into()) },
//! );
//! assert_eq!(result.unwrap(), Explored { interleavings: 2, steps: 4 });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One atomic step of a model thread: a mutation of the shared model state.
pub type Step<S> = Box<dyn Fn(&mut S)>;

/// A model thread: a named, ordered list of atomic steps.
pub struct ModelThread<S> {
    /// Shown in violation traces.
    pub name: &'static str,
    /// Executed in order; the scheduler interleaves steps across threads.
    pub steps: Vec<Step<S>>,
}

/// Convenience constructor for a [`ModelThread`].
pub fn thread<S>(name: &'static str, steps: Vec<Step<S>>) -> ModelThread<S> {
    ModelThread { name, steps }
}

/// Summary of a successful exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Explored {
    /// Number of complete interleavings enumerated.
    pub interleavings: usize,
    /// Total steps executed across all interleavings.
    pub steps: usize,
}

/// A schedule under which a check failed, with the step trace that led
/// there (`thread-name[step-index]` entries in execution order).
#[derive(Clone, Debug)]
pub struct Violation {
    /// The failing schedule, outermost step first.
    pub trace: Vec<String>,
    /// The message from the failed invariant or final check.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schedule [{}]: {}", self.trace.join(" -> "), self.message)
    }
}

/// Hard cap on executed steps so a mis-sized model fails fast instead of
/// running for hours. `C(16, 8)` two-thread interleavings fit comfortably.
const MAX_STEPS: usize = 4_000_000;

/// Enumerate every interleaving of `threads` starting from `initial`.
///
/// After each step the `invariant` runs against the resulting state; after
/// each complete schedule `final_check` runs. The first failure aborts the
/// search and returns the offending schedule as a [`Violation`]. A model
/// whose schedule space exceeds `MAX_STEPS` (4,000,000) executed steps also returns a
/// violation (shrink the model rather than sampling it silently).
pub fn explore<S: Clone>(
    initial: &S,
    threads: Vec<ModelThread<S>>,
    invariant: impl Fn(&S) -> Result<(), String>,
    final_check: impl Fn(&S) -> Result<(), String>,
) -> Result<Explored, Violation> {
    let mut explored = Explored { interleavings: 0, steps: 0 };
    let mut trace: Vec<String> = Vec::new();
    let mut positions = vec![0usize; threads.len()];
    dfs(
        initial,
        &threads,
        &mut positions,
        &invariant,
        &final_check,
        &mut explored,
        &mut trace,
    )?;
    Ok(explored)
}

fn dfs<S: Clone>(
    state: &S,
    threads: &[ModelThread<S>],
    positions: &mut Vec<usize>,
    invariant: &impl Fn(&S) -> Result<(), String>,
    final_check: &impl Fn(&S) -> Result<(), String>,
    explored: &mut Explored,
    trace: &mut Vec<String>,
) -> Result<(), Violation> {
    let mut any_runnable = false;
    for t in 0..threads.len() {
        let pos = positions[t];
        if pos >= threads[t].steps.len() {
            continue;
        }
        any_runnable = true;
        explored.steps += 1;
        if explored.steps > MAX_STEPS {
            return Err(Violation {
                trace: trace.clone(),
                message: format!("model too large: exceeded {MAX_STEPS} executed steps"),
            });
        }
        let mut next = state.clone();
        (threads[t].steps[pos])(&mut next);
        trace.push(format!("{}[{}]", threads[t].name, pos));
        let step_result = invariant(&next).map_err(|message| Violation {
            trace: trace.clone(),
            message,
        });
        let recursed = step_result.and_then(|()| {
            positions[t] += 1;
            let r = dfs(&next, threads, positions, invariant, final_check, explored, trace);
            positions[t] -= 1;
            r
        });
        trace.pop();
        recursed?;
    }
    if !any_runnable {
        explored.interleavings += 1;
        final_check(state).map_err(|message| Violation {
            trace: trace.clone(),
            message,
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default)]
    struct Pair {
        a: u32,
        b: u32,
    }

    #[test]
    fn enumerates_all_interleavings() {
        // Two threads of 2 steps each: C(4, 2) = 6 interleavings,
        // sum over the DFS tree of executed steps.
        let result = explore(
            &Pair::default(),
            vec![
                thread(
                    "t1",
                    vec![
                        Box::new(|s: &mut Pair| s.a += 1) as Step<Pair>,
                        Box::new(|s: &mut Pair| s.a += 1),
                    ],
                ),
                thread(
                    "t2",
                    vec![
                        Box::new(|s: &mut Pair| s.b += 1) as Step<Pair>,
                        Box::new(|s: &mut Pair| s.b += 1),
                    ],
                ),
            ],
            |_| Ok(()),
            |s| {
                if s.a == 2 && s.b == 2 {
                    Ok(())
                } else {
                    Err("steps lost".into())
                }
            },
        )
        .unwrap();
        assert_eq!(result.interleavings, 6);
    }

    #[test]
    fn finds_the_single_violating_schedule() {
        // Violation only when t2 runs between t1's two steps: the trace
        // pinpoints it.
        let violation = explore(
            &Pair::default(),
            vec![
                thread(
                    "writer",
                    vec![
                        Box::new(|s: &mut Pair| s.a = 1) as Step<Pair>,
                        Box::new(|s: &mut Pair| s.a = 2),
                    ],
                ),
                thread("reader", vec![Box::new(|s: &mut Pair| s.b = s.a) as Step<Pair>]),
            ],
            |s| {
                if s.b == 1 {
                    Err("reader observed the torn intermediate value".into())
                } else {
                    Ok(())
                }
            },
            |_| Ok(()),
        )
        .unwrap_err();
        assert_eq!(violation.trace, vec!["writer[0]", "reader[0]"]);
    }

    #[test]
    fn empty_threads_run_the_final_check_once() {
        let result = explore(
            &Pair::default(),
            vec![],
            |_| Ok(()),
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(result, Explored { interleavings: 1, steps: 0 });
    }
}
