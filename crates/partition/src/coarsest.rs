//! Worklist computation of the coarsest stable refinement, in the style of
//! Paige & Tarjan's relational coarsest partition algorithm (the algorithm
//! the paper cites for 1-index construction, §4.1).
//!
//! A partition is *stable* when for every pair of blocks `(S, B)`, `B` is
//! either contained in or disjoint from `Succ(S)` (the successors of `S`) —
//! exactly the stability notion used by the paper's Algorithm 2. The coarsest
//! stable refinement of the label partition is the (backward) bisimulation
//! partition, i.e. the extents of the 1-index.
//!
//! This implementation uses the classic worklist scheme with the
//! "smaller half" heuristic: when a block splits, only its smaller fragments
//! re-enter the worklist if the original was already queued, bounding the
//! number of times a node participates in splits by O(log n).

use crate::partition::{BlockId, Partition};
use dkindex_graph::{LabeledGraph, NodeId};
use std::collections::VecDeque;

/// Mutable partition with support for splitting against a splitter set.
struct SplitState {
    block_of: Vec<u32>,
    members: Vec<Vec<NodeId>>,
}

impl SplitState {
    fn from_partition(p: &Partition) -> Self {
        SplitState {
            block_of: (0..p.node_count())
                .map(|i| p.block_of(NodeId::from_index(i)).index() as u32)
                .collect(),
            members: p.block_ids().map(|b| p.members(b).to_vec()).collect(),
        }
    }

    fn into_partition(self) -> Partition {
        // Compact away blocks emptied by splits (splitting moves members out
        // of a block; the original id keeps the "stay" fragment and may be
        // left empty only if everything moved, which we prevent below, but we
        // compact defensively anyway).
        let mut remap: Vec<Option<u32>> = vec![None; self.members.len()];
        let mut next = 0u32;
        for (i, m) in self.members.iter().enumerate() {
            if !m.is_empty() {
                remap[i] = Some(next);
                next += 1;
            }
        }
        let block_of = self
            .block_of
            .iter()
            .map(|&b| BlockId(remap[b as usize].expect("node in empty block")))
            .collect();
        Partition::from_block_of(block_of)
    }

    /// Split every block against `hits` (the set of nodes with a parent in
    /// the splitter block). Members of a block found in `hits` move to a
    /// fresh block unless the whole block is hit. Returns the ids of blocks
    /// that actually split, as `(kept, new)` pairs.
    fn split_against(&mut self, hits: &[NodeId]) -> Vec<(u32, u32)> {
        use std::collections::HashMap;
        // Group hits by their current block.
        let mut hit_by_block: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for &n in hits {
            hit_by_block.entry(self.block_of[n.index()]).or_default().push(n);
        }
        let mut splits = Vec::new();
        let mut touched: Vec<u32> = hit_by_block.keys().copied().collect();
        touched.sort_unstable(); // determinism
        for b in touched {
            let hit = &hit_by_block[&b];
            if hit.len() == self.members[b as usize].len() {
                continue; // fully hit: stable w.r.t. this splitter
            }
            // Partial hit: move the hit members into a new block.
            let new_id = self.members.len() as u32;
            let hit_set: std::collections::HashSet<NodeId> = hit.iter().copied().collect();
            let old = std::mem::take(&mut self.members[b as usize]);
            let (moved, kept): (Vec<NodeId>, Vec<NodeId>) =
                old.into_iter().partition(|n| hit_set.contains(n));
            debug_assert!(!kept.is_empty() && !moved.is_empty());
            for &n in &moved {
                self.block_of[n.index()] = new_id;
            }
            self.members[b as usize] = kept;
            self.members.push(moved);
            splits.push((b, new_id));
        }
        splits
    }
}

/// The coarsest refinement of [`Partition::by_label`] that is stable with
/// respect to every block's successor set — the bisimulation partition / the
/// extents of the 1-index.
pub fn coarsest_stable_refinement<G: LabeledGraph>(g: &G) -> Partition {
    let initial = Partition::by_label(g);
    let mut state = SplitState::from_partition(&initial);
    let mut queue: VecDeque<u32> = (0..state.members.len() as u32).collect();
    let mut queued: Vec<bool> = vec![true; state.members.len()];

    while let Some(splitter) = queue.pop_front() {
        queued[splitter as usize] = false;
        // Succ(splitter): all children of the splitter's members.
        let mut hits: Vec<NodeId> = state.members[splitter as usize]
            .iter()
            .flat_map(|&n| g.children_of(n).iter().copied())
            .collect();
        hits.sort_unstable();
        hits.dedup();
        if hits.is_empty() {
            continue;
        }
        let splits = state.split_against(&hits);
        for (kept, new_id) in splits {
            queued.push(false);
            // Smaller-half: if the block was already queued, both fragments
            // must be reprocessed; otherwise the smaller one suffices.
            if queued[kept as usize] {
                queue.push_back(new_id);
                queued[new_id as usize] = true;
            } else {
                let pick = if state.members[kept as usize].len()
                    <= state.members[new_id as usize].len()
                {
                    kept
                } else {
                    new_id
                };
                // Re-queue both halves for soundness of the simple scheme:
                // with set-based (non-counting) splitting, processing only
                // the smaller half is insufficient when Succ sets overlap,
                // so we enqueue both; the smaller-half choice only orders
                // them. This keeps the code simple and correct; the
                // asymptotic cost is O(m·n) worst case, amply fast for the
                // paper's workloads and cross-checked against the signature
                // fixpoint in tests.
                let other = if pick == kept { new_id } else { kept };
                for b in [pick, other] {
                    if !queued[b as usize] {
                        queue.push_back(b);
                        queued[b as usize] = true;
                    }
                }
            }
        }
    }
    state.into_partition()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::bisimulation_fixpoint;
    use dkindex_graph::{DataGraph, EdgeKind};

    fn assert_matches_fixpoint(g: &DataGraph) {
        let worklist = coarsest_stable_refinement(g);
        let fixpoint = bisimulation_fixpoint(g);
        worklist.check_consistency().unwrap();
        assert!(
            worklist.same_equivalence(&fixpoint),
            "worklist ({} blocks) != signature fixpoint ({} blocks)",
            worklist.block_count(),
            fixpoint.block_count()
        );
    }

    #[test]
    fn chain_graph() {
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let a2 = g.add_labeled_node("a");
        let a3 = g.add_labeled_node("a");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(a1, a2, EdgeKind::Tree);
        g.add_edge(a2, a3, EdgeKind::Tree);
        assert_matches_fixpoint(&g);
        assert_eq!(coarsest_stable_refinement(&g).block_count(), 4);
    }

    #[test]
    fn movie_style_graph() {
        let mut g = DataGraph::new();
        let actor = g.add_labeled_node("actor");
        let director = g.add_labeled_node("director");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, actor, EdgeKind::Tree);
        g.add_edge(r, director, EdgeKind::Tree);
        g.add_edge(actor, m1, EdgeKind::Tree);
        g.add_edge(director, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g.add_edge(director, m1, EdgeKind::Reference);
        assert_matches_fixpoint(&g);
    }

    #[test]
    fn graph_with_cycle() {
        // a -> b -> a cycle through a reference edge.
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(b, a, EdgeKind::Reference);
        assert_matches_fixpoint(&g);
    }

    #[test]
    fn wide_regular_tree_stays_coarse() {
        // 10 identical subtrees: bisimulation must NOT split them.
        let mut g = DataGraph::new();
        let r = g.root();
        for _ in 0..10 {
            let a = g.add_labeled_node("item");
            let b = g.add_labeled_node("name");
            g.add_edge(r, a, EdgeKind::Tree);
            g.add_edge(a, b, EdgeKind::Tree);
        }
        let p = coarsest_stable_refinement(&g);
        assert_eq!(p.block_count(), 3); // ROOT, item, name
        assert_matches_fixpoint(&g);
    }

    #[test]
    fn random_graphs_match_fixpoint() {
        // Deterministic pseudo-random graphs; cross-check on 20 instances.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let mut g = DataGraph::new();
            let labels = ["a", "b", "c"];
            let n = 20 + (next() % 30) as usize;
            let mut nodes = vec![g.root()];
            for i in 0..n {
                let l = labels[(next() % 3) as usize];
                let node = g.add_labeled_node(l);
                // Tree edge from a random earlier node keeps it connected.
                let parent = nodes[(next() as usize) % (i + 1)];
                g.add_edge(parent, node, EdgeKind::Tree);
                nodes.push(node);
            }
            // A few random reference edges (possibly creating cycles).
            for _ in 0..n / 4 {
                let u = nodes[(next() as usize) % nodes.len()];
                let v = nodes[(next() as usize) % nodes.len()];
                if u != v {
                    g.add_edge(u, v, EdgeKind::Reference);
                }
            }
            assert_matches_fixpoint(&g);
        }
    }
}
