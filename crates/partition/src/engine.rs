//! The allocation-free, batch-parallel refinement engine.
//!
//! This is the workhorse behind every summary construction in the paper:
//! A(k) k-bisimulation (§2) and the D(k)-index's selective refinement rounds
//! (§4.2, Algorithm 2) are both driven through it. Each round (one per
//! k-level) is recorded under the `partition.*` telemetry metrics —
//! `partition.rounds`, `partition.symbols_interned`,
//! `partition.blocks_per_round` and the `partition.round_ns` span — when the
//! recorder is enabled.
//!
//! [`RefineEngine`] computes the same rounds as [`crate::refine`] — regroup
//! nodes by `(current block, sorted parent-block set)` — but holds every
//! piece of scratch state across rounds:
//!
//! * **Signature arena**: each round writes all nodes' sorted, deduplicated
//!   parent-block slices into one reused buffer (`sig_data` + `sig_bounds`)
//!   instead of allocating a fresh `Vec<BlockId>` per node.
//! * **Signature interning**: slices are hashed into a per-round `u32` symbol
//!   table (hash buckets with slice-equality collision checks), so regrouping
//!   keys are `(BlockId, u32)` pairs packed into a `u64` — no hashing of
//!   variable-length vectors, no per-key allocation.
//! * **Batch parallelism**: with `threads > 1`, signature computation *and*
//!   signature hashing are fanned across contiguous node ranges with
//!   `std::thread::scope` and merged deterministically in node order.
//!   Interning and regrouping stay sequential in node order, so the result is
//!   bit-identical for every thread count.
//!
//! The produced [`Partition`]s are **identical** (same block ids, same member
//! order) to those of [`crate::refine::refine_round`] /
//! [`crate::refine::refine_round_selective`] / [`Partition::split_by_key`]:
//! new block ids are assigned in order of first appearance by node id, and
//! equal `(block, signature)` pairs intern to equal `(block, symbol)` pairs.
//! The reference implementations in [`crate::refine`] are kept as the oracle
//! for equivalence tests and before/after benchmarks.

use crate::partition::{BlockId, Partition};
use dkindex_graph::{LabeledGraph, NodeId};
use dkindex_telemetry as telemetry;
use std::collections::HashMap;

/// Symbol given to members of blocks a selective round passes through
/// unchanged. Real symbols are dense from 0, so the sentinel cannot collide
/// with an interned signature (an engine would need 2^32 - 1 distinct
/// signatures first, more than the `u32` node id space allows).
const SKIP_SYMBOL: u32 = u32::MAX;

/// Reusable scratch state for signature-interned partition refinement.
///
/// Build once, call [`refine_round`](Self::refine_round) (or the fixpoint
/// drivers) many times: after warm-up the only allocations per round are the
/// output partition's own maps.
#[derive(Clone, Debug)]
pub struct RefineEngine {
    threads: usize,
    /// Concatenated per-node signatures for the current round.
    sig_data: Vec<BlockId>,
    /// `sig_bounds[i]..sig_bounds[i + 1]` delimits node i's slice.
    sig_bounds: Vec<u32>,
    /// Per-node signature digest, computed by the (possibly parallel)
    /// signature stage so the sequential interning stage never hashes.
    /// Entries for skipped nodes are unused.
    sig_hash: Vec<u64>,
    /// Sort/dedup scratch for the sequential signature path.
    scratch: Vec<BlockId>,
    /// Signature hash → candidate symbols (collisions resolved by comparing
    /// slices).
    buckets: HashMap<u64, Vec<u32>, MixBuild>,
    /// Symbol → its defining slice in `sig_data`.
    sym_slice: Vec<(u32, u32)>,
    /// Node → interned symbol (or [`SKIP_SYMBOL`]).
    node_symbol: Vec<u32>,
    /// Packed `(block, symbol)` → new block index.
    pair_ids: HashMap<u64, u32, MixBuild>,
}

/// Multiply-mix hasher for the engine's integer keys. Both engine maps are
/// keyed by values the engine already hashed or packed (`hash_signature`
/// digests, packed `(block, symbol)` pairs), so the default SipHash would
/// cost more than the rest of the lookup; one multiply and an xor-shift
/// spread the bits well enough for table indexing.
#[derive(Clone, Debug, Default)]
struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        let x = i.wrapping_mul(0x9e3779b97f4a7c15);
        self.0 = x ^ (x >> 29);
    }
}

type MixBuild = std::hash::BuildHasherDefault<MixHasher>;

impl Default for RefineEngine {
    fn default() -> Self {
        RefineEngine::new()
    }
}

impl RefineEngine {
    /// Single-threaded engine.
    pub fn new() -> Self {
        RefineEngine::with_threads(1)
    }

    /// Engine fanning signature computation over `threads` threads
    /// (`0` means "use the machine's available parallelism"). Results are
    /// identical for every thread count.
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        RefineEngine {
            threads,
            sig_data: Vec::new(),
            sig_bounds: Vec::new(),
            sig_hash: Vec::new(),
            scratch: Vec::new(),
            buckets: HashMap::default(),
            sym_slice: Vec::new(),
            node_symbol: Vec::new(),
            pair_ids: HashMap::default(),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// One full refinement round: regroup every node by
    /// `(current block, parent-block set)`. Identical output to
    /// [`crate::refine::refine_round`].
    pub fn refine_round<G: LabeledGraph + Sync>(
        &mut self,
        g: &G,
        prev: &Partition,
    ) -> (Partition, bool) {
        self.refine_round_selective(g, prev, |_| true)
    }

    /// One selective round: blocks failing `refine_block` pass through
    /// unchanged. Identical output to
    /// [`crate::refine::refine_round_selective`]. `refine_block` must be
    /// pure — it is consulted once per node per stage.
    pub fn refine_round_selective<G: LabeledGraph + Sync>(
        &mut self,
        g: &G,
        prev: &Partition,
        refine_block: impl Fn(BlockId) -> bool + Sync,
    ) -> (Partition, bool) {
        let n = g.node_count();
        debug_assert_eq!(n, prev.node_count());
        let span = telemetry::Span::start(&telemetry::metrics::PARTITION_ROUND_NS);
        self.compute_signatures(g, prev, &refine_block);
        self.intern_symbols(prev, &refine_block, n);
        let (next, changed) = self.regroup(prev, n);
        drop(span);
        telemetry::metrics::PARTITION_ROUNDS.incr();
        if changed {
            telemetry::metrics::PARTITION_ROUNDS_CHANGED.incr();
        }
        telemetry::metrics::PARTITION_SYMBOLS_INTERNED.add(self.sym_slice.len() as u64);
        telemetry::metrics::PARTITION_BLOCKS_PER_ROUND.record(next.block_count() as u64);
        if telemetry::is_enabled() {
            let refined = self
                .node_symbol
                .iter()
                .filter(|&&s| s != SKIP_SYMBOL)
                .count();
            telemetry::metrics::PARTITION_NODES_REFINED.add(refined as u64);
        }
        (next, changed)
    }

    /// Stage 1: fill `sig_data` / `sig_bounds` with every refined node's
    /// sorted, deduplicated parent-block slice (skipped nodes get an empty
    /// slice), and `sig_hash` with each refined slice's digest. Parallel
    /// over contiguous node ranges when it pays off — this is the sharded
    /// part of construction: the per-node sort/dedup *and* the signature
    /// hashing both run on the workers, leaving the sequential interning
    /// stage nothing but table lookups. The deterministic node-order merge
    /// keeps the output byte-identical for every thread count.
    fn compute_signatures<G: LabeledGraph + Sync>(
        &mut self,
        g: &G,
        prev: &Partition,
        refine_block: &(impl Fn(BlockId) -> bool + Sync),
    ) {
        let n = g.node_count();
        self.sig_data.clear();
        self.sig_bounds.clear();
        self.sig_bounds.push(0);
        self.sig_hash.clear();

        let fill = |range: std::ops::Range<usize>,
                    scratch: &mut Vec<BlockId>,
                    data: &mut Vec<BlockId>,
                    bounds: &mut Vec<u32>,
                    hashes: &mut Vec<u64>| {
            for i in range {
                let node = NodeId::from_index(i);
                if refine_block(prev.block_of(node)) {
                    scratch.clear();
                    scratch.extend(g.parents_of(node).iter().map(|&p| prev.block_of(p)));
                    scratch.sort_unstable();
                    scratch.dedup();
                    data.extend_from_slice(scratch);
                    hashes.push(hash_signature(scratch));
                } else {
                    hashes.push(0); // unused: interning checks refine_block first
                }
                bounds.push(data.len() as u32);
            }
        };

        // Below this, thread spawn overhead dominates the round itself.
        const PARALLEL_THRESHOLD: usize = 4096;
        if self.threads <= 1 || n < PARALLEL_THRESHOLD {
            let mut scratch = std::mem::take(&mut self.scratch);
            let mut data = std::mem::take(&mut self.sig_data);
            let mut bounds = std::mem::take(&mut self.sig_bounds);
            let mut hashes = std::mem::take(&mut self.sig_hash);
            fill(0..n, &mut scratch, &mut data, &mut bounds, &mut hashes);
            self.scratch = scratch;
            self.sig_data = data;
            self.sig_bounds = bounds;
            self.sig_hash = hashes;
            return;
        }

        let chunk = n.div_ceil(self.threads);
        let parts: Vec<(Vec<BlockId>, Vec<u32>, Vec<u64>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.threads)
                .map(|t| {
                    let lo = (t * chunk).min(n);
                    let hi = ((t + 1) * chunk).min(n);
                    let fill = &fill;
                    s.spawn(move || {
                        let mut scratch = Vec::new();
                        let mut data = Vec::new();
                        let mut bounds = Vec::new();
                        let mut hashes = Vec::new();
                        fill(lo..hi, &mut scratch, &mut data, &mut bounds, &mut hashes);
                        (data, bounds, hashes)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("signature worker panicked"))
                .collect()
        });
        // Splice chunk results in node order; per-chunk bounds are relative
        // to the chunk's own data buffer and must be rebased. Hashes are
        // per-node values and concatenate as-is.
        for (data, bounds, hashes) in parts {
            let base = self.sig_data.len() as u32;
            self.sig_data.extend_from_slice(&data);
            self.sig_bounds.extend(bounds.iter().map(|&b| base + b));
            self.sig_hash.extend_from_slice(&hashes);
        }
    }

    /// Stage 2: intern each refined node's slice into the round's symbol
    /// table, sequentially in node order (symbol numbering is part of no
    /// contract, but sequential interning keeps the stage simple and the
    /// output independent of the thread count). The digests were already
    /// computed by the sharded signature stage; this loop only does bucket
    /// lookups and slice-equality collision checks.
    fn intern_symbols(
        &mut self,
        prev: &Partition,
        refine_block: &impl Fn(BlockId) -> bool,
        n: usize,
    ) {
        self.buckets.clear();
        self.sym_slice.clear();
        self.node_symbol.clear();
        let sig_data = &self.sig_data;
        let sig_bounds = &self.sig_bounds;
        for i in 0..n {
            let node = NodeId::from_index(i);
            if !refine_block(prev.block_of(node)) {
                self.node_symbol.push(SKIP_SYMBOL);
                continue;
            }
            let (s, e) = (sig_bounds[i] as usize, sig_bounds[i + 1] as usize);
            let slice = &sig_data[s..e];
            let bucket = self.buckets.entry(self.sig_hash[i]).or_default();
            let mut sym = SKIP_SYMBOL;
            for &cand in bucket.iter() {
                let (cs, ce) = self.sym_slice[cand as usize];
                if sig_data[cs as usize..ce as usize] == *slice {
                    sym = cand;
                    break;
                }
            }
            if sym == SKIP_SYMBOL {
                sym = self.sym_slice.len() as u32;
                self.sym_slice.push((s as u32, e as u32));
                bucket.push(sym);
            }
            self.node_symbol.push(sym);
        }
    }

    /// Stage 3: regroup by packed `(old block, symbol)` pairs, assigning new
    /// block ids in order of first appearance by node id — exactly
    /// [`Partition::split_by_key`]'s numbering.
    fn regroup(&mut self, prev: &Partition, n: usize) -> (Partition, bool) {
        self.pair_ids.clear();
        let mut block_of = Vec::with_capacity(n);
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for i in 0..n {
            let node = NodeId::from_index(i);
            let key =
                ((prev.block_of(node).index() as u64) << 32) | self.node_symbol[i] as u64;
            let next = members.len() as u32;
            let id = *self.pair_ids.entry(key).or_insert(next);
            if id == next {
                members.push(Vec::new());
            }
            block_of.push(BlockId::from_index(id as usize));
            members[id as usize].push(node);
        }
        let changed = members.len() != prev.block_count();
        (Partition::from_parts(block_of, members), changed)
    }

    /// The k-bisimulation partition of `g` (extents of the A(k)-index),
    /// identical to [`crate::refine::k_bisimulation`].
    pub fn k_bisimulation<G: LabeledGraph + Sync>(&mut self, g: &G, k: usize) -> Partition {
        let mut p = Partition::by_label(g);
        for _ in 0..k {
            let (next, changed) = self.refine_round(g, &p);
            p = next;
            if !changed {
                break;
            }
        }
        p
    }

    /// The full bisimulation fixpoint (extents of the 1-index), identical to
    /// [`crate::refine::bisimulation_fixpoint`].
    pub fn bisimulation_fixpoint<G: LabeledGraph + Sync>(&mut self, g: &G) -> Partition {
        let mut p = Partition::by_label(g);
        loop {
            let (next, changed) = self.refine_round(g, &p);
            p = next;
            if !changed {
                return p;
            }
        }
    }
}

/// FNV-1a over the block values plus the slice length. Collisions are fine —
/// interning compares slices — the hash only spreads bucket load.
#[inline]
fn hash_signature(slice: &[BlockId]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in slice {
        h ^= b.index() as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ slice.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine;
    use dkindex_graph::{DataGraph, EdgeKind};

    /// Deterministic pseudo-random graph with shared labels, tree and
    /// reference edges — enough structure to exercise multi-round splits.
    fn scrambled(nodes: usize, seed: u64) -> DataGraph {
        let mut g = DataGraph::new();
        let labels = ["a", "b", "c", "d"];
        let mut state = seed | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ids = vec![g.root()];
        for _ in 0..nodes {
            let l = labels[(rand() % labels.len() as u64) as usize];
            let n = g.add_labeled_node(l);
            let parent = ids[(rand() % ids.len() as u64) as usize];
            g.add_edge(parent, n, EdgeKind::Tree);
            if rand() % 3 == 0 {
                let extra = ids[(rand() % ids.len() as u64) as usize];
                if extra != parent {
                    g.add_edge(extra, n, EdgeKind::Reference);
                }
            }
            ids.push(n);
        }
        g
    }

    #[test]
    fn engine_round_is_identical_to_reference() {
        for seed in [1, 7, 42] {
            let g = scrambled(60, seed);
            let mut engine = RefineEngine::new();
            let mut p = Partition::by_label(&g);
            for round in 0..6 {
                let (reference, ref_changed) = refine::refine_round(&g, &p);
                let (fast, fast_changed) = engine.refine_round(&g, &p);
                assert_eq!(reference, fast, "seed {seed} round {round}");
                assert_eq!(ref_changed, fast_changed, "seed {seed} round {round}");
                p = fast;
            }
        }
    }

    #[test]
    fn engine_selective_round_is_identical_to_reference() {
        let g = scrambled(80, 5);
        let mut engine = RefineEngine::new();
        let p = refine::k_bisimulation(&g, 1);
        // Refine only even-numbered blocks.
        let flag = |b: BlockId| b.index() & 1 == 0;
        let (reference, ref_changed) = refine::refine_round_selective(&g, &p, flag);
        let (fast, fast_changed) = engine.refine_round_selective(&g, &p, flag);
        assert_eq!(reference, fast);
        assert_eq!(ref_changed, fast_changed);
    }

    #[test]
    fn engine_fixpoints_match_reference() {
        let g = scrambled(70, 11);
        let mut engine = RefineEngine::new();
        assert_eq!(engine.k_bisimulation(&g, 3), refine::k_bisimulation(&g, 3));
        assert_eq!(
            engine.bisimulation_fixpoint(&g),
            refine::bisimulation_fixpoint(&g)
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = scrambled(150, 23);
        let mut single = RefineEngine::with_threads(1);
        let expected = single.bisimulation_fixpoint(&g);
        for threads in [2, 3, 8] {
            let mut multi = RefineEngine::with_threads(threads);
            assert_eq!(multi.bisimulation_fixpoint(&g), expected, "threads {threads}");
        }
    }

    #[test]
    fn engine_reuse_across_graphs_is_clean() {
        let mut engine = RefineEngine::new();
        let big = scrambled(100, 3);
        let _ = engine.bisimulation_fixpoint(&big);
        // A smaller graph afterwards must not see stale state.
        let small = scrambled(20, 9);
        assert_eq!(
            engine.bisimulation_fixpoint(&small),
            refine::bisimulation_fixpoint(&small)
        );
    }

    #[test]
    fn empty_signatures_are_distinct_from_skipped_blocks() {
        // Parentless nodes (empty signature) in a refined block must not be
        // merged with nodes of skipped blocks.
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let _orphan = g.add_labeled_node("a"); // no parents at all
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        let p = Partition::by_label(&g);
        let mut engine = RefineEngine::new();
        for flag in [true, false] {
            let (reference, _) = refine::refine_round_selective(&g, &p, |_| flag);
            let (fast, _) = engine.refine_round_selective(&g, &p, |_| flag);
            assert_eq!(reference, fast, "flag {flag}");
        }
    }
}
