//! Forward and forward-backward (F&B) refinement.
//!
//! The backward refinement of [`crate::refine`] groups nodes by *incoming*
//! structure — exactly what simple path expressions need. Branching path
//! queries (`//movie[actor]/title`) additionally constrain nodes by their
//! *outgoing* structure; the covering index for those is the **F&B-index**
//! (Kaushik et al., SIGMOD 2002 — reference \[24\] of the D(k) paper, named in
//! its future-work section). Its extents are the coarsest partition stable
//! under both parent and child signatures, computed here by alternating
//! backward and forward rounds to a joint fixpoint.

use crate::partition::{BlockId, Partition};
use crate::refine::refine_round;
use dkindex_graph::{LabeledGraph, NodeId};

/// The deduplicated, sorted set of blocks occupied by `node`'s children
/// under `prev` — the forward refinement signature.
pub fn child_signature<G: LabeledGraph>(g: &G, prev: &Partition, node: NodeId) -> Vec<BlockId> {
    let mut sig: Vec<BlockId> = g
        .children_of(node)
        .iter()
        .map(|&c| prev.block_of(c))
        .collect();
    sig.sort_unstable();
    sig.dedup();
    sig
}

/// One forward refinement round: regroup nodes by `(current block, child
/// block set)`. Returns the refined partition and whether anything split.
pub fn refine_round_forward<G: LabeledGraph>(g: &G, prev: &Partition) -> (Partition, bool) {
    prev.split_by_key(|n| child_signature(g, prev, n))
}

/// The forward k-bisimulation partition (nodes grouped by label and
/// outgoing structure up to depth k).
pub fn k_forward_bisimulation<G: LabeledGraph>(g: &G, k: usize) -> Partition {
    let mut p = Partition::by_label(g);
    for _ in 0..k {
        let (next, changed) = refine_round_forward(g, &p);
        p = next;
        if !changed {
            break;
        }
    }
    p
}

/// The F&B partition: the coarsest refinement of the label partition stable
/// under *both* parent and child signatures — the extents of the F&B-index.
/// Computed by alternating backward and forward rounds until neither splits.
pub fn fb_bisimulation<G: LabeledGraph>(g: &G) -> Partition {
    let mut p = Partition::by_label(g);
    loop {
        let (after_backward, b_changed) = refine_round(g, &p);
        let (after_forward, f_changed) = refine_round_forward(g, &after_backward);
        p = after_forward;
        if !b_changed && !f_changed {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::bisimulation_fixpoint;
    use dkindex_graph::{DataGraph, EdgeKind};

    /// Two `movie` nodes with identical incoming structure; only one has an
    /// `actor` child. Backward bisimulation keeps them together; F&B splits.
    fn branching() -> (DataGraph, NodeId, NodeId) {
        let mut g = DataGraph::new();
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let a = g.add_labeled_node("actor");
        let r = g.root();
        g.add_edge(r, m1, EdgeKind::Tree);
        g.add_edge(r, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g.add_edge(m1, a, EdgeKind::Tree);
        (g, m1, m2)
    }

    #[test]
    fn backward_keeps_branching_nodes_together() {
        let (g, m1, m2) = branching();
        let back = bisimulation_fixpoint(&g);
        assert!(back.same_block(m1, m2));
    }

    #[test]
    fn fb_separates_by_outgoing_structure() {
        let (g, m1, m2) = branching();
        let fb = fb_bisimulation(&g);
        assert!(!fb.same_block(m1, m2));
        fb.check_consistency().unwrap();
    }

    #[test]
    fn fb_refines_backward_bisimulation() {
        let (g, ..) = branching();
        let fb = fb_bisimulation(&g);
        let back = bisimulation_fixpoint(&g);
        assert!(fb.is_refinement_of(&back));
    }

    #[test]
    fn fb_is_stable_under_both_rounds() {
        let (g, ..) = branching();
        let fb = fb_bisimulation(&g);
        let (_, b_changed) = refine_round(&g, &fb);
        let (_, f_changed) = refine_round_forward(&g, &fb);
        assert!(!b_changed && !f_changed);
    }

    #[test]
    fn forward_k_bisimulation_is_monotone() {
        let (g, ..) = branching();
        let mut prev = k_forward_bisimulation(&g, 0);
        for k in 1..4 {
            let next = k_forward_bisimulation(&g, k);
            assert!(next.is_refinement_of(&prev));
            prev = next;
        }
    }

    #[test]
    fn forward_splits_leaves_from_inner_nodes() {
        // Two `a` nodes: one leaf, one with a child.
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let a2 = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(r, a2, EdgeKind::Tree);
        g.add_edge(a1, b, EdgeKind::Tree);
        let f1 = k_forward_bisimulation(&g, 1);
        assert!(!f1.same_block(a1, a2));
    }

    #[test]
    fn fb_on_cycle_terminates() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(b, a, EdgeKind::Reference);
        let fb = fb_bisimulation(&g);
        fb.check_consistency().unwrap();
    }

    #[test]
    fn fb_on_regular_tree_is_coarse() {
        // Identical subtrees: F&B must not split them.
        let mut g = DataGraph::new();
        let r = g.root();
        for _ in 0..5 {
            let item = g.add_labeled_node("item");
            let name = g.add_labeled_node("name");
            g.add_edge(r, item, EdgeKind::Tree);
            g.add_edge(item, name, EdgeKind::Tree);
        }
        assert_eq!(fb_bisimulation(&g).block_count(), 3);
    }
}
