//! # dkindex-partition
//!
//! Partition refinement for labeled directed graphs — the algorithmic core of
//! every bisimulation-based structural summary in the D(k)-index paper.
//!
//! * [`Partition`] / [`BlockId`] — a partition of a graph's node set.
//! * [`refine`] — backward-signature refinement: one round, k rounds
//!   (A(k) extents), fixpoint (1-index extents), and the *selective* round
//!   used by D(k) construction (only blocks whose similarity requirement is
//!   high enough get split).
//! * [`RefineEngine`] — the interned-signature, optionally multi-threaded
//!   implementation of the same rounds with reusable scratch buffers;
//!   produces partitions identical to [`refine`].
//! * [`coarsest`] — worklist coarsest-stable-refinement in the style of
//!   Paige–Tarjan, cross-checked against the signature fixpoint.
//! * [`naive`] — quadratic pairwise k-bisimilarity, a test oracle for
//!   Definition 2 of the paper.
//!
//! ## Example
//!
//! ```
//! use dkindex_graph::{DataGraph, EdgeKind, LabeledGraph};
//! use dkindex_partition::{k_bisimulation, Partition};
//!
//! let mut g = DataGraph::new();
//! let a = g.add_labeled_node("actor");
//! let d = g.add_labeled_node("director");
//! let m1 = g.add_labeled_node("movie");
//! let m2 = g.add_labeled_node("movie");
//! let root = g.root();
//! g.add_edge(root, a, EdgeKind::Tree);
//! g.add_edge(root, d, EdgeKind::Tree);
//! g.add_edge(a, m1, EdgeKind::Tree);
//! g.add_edge(d, m2, EdgeKind::Tree);
//!
//! // 0-bisimulation keeps the two movies together; 1-bisimulation separates
//! // them because one is reached through `actor` and the other `director`.
//! assert!(k_bisimulation(&g, 0).same_block(m1, m2));
//! assert!(!k_bisimulation(&g, 1).same_block(m1, m2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod partition;

pub mod coarsest;
pub mod engine;
pub mod forward;
pub mod naive;
pub mod paige_tarjan;
pub mod refine;

pub use coarsest::coarsest_stable_refinement;
pub use engine::RefineEngine;
pub use forward::{child_signature, fb_bisimulation, k_forward_bisimulation, refine_round_forward};
pub use naive::{naive_k_bisimilar, KBisimTable};
pub use paige_tarjan::paige_tarjan;
pub use partition::{BlockId, Partition};
pub use refine::{
    bisimulation_depth, bisimulation_fixpoint, k_bisimulation, parent_signature, refine_round,
    refine_round_selective,
};
