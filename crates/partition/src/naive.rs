//! Naive pairwise k-bisimilarity, straight from Definition 2 of the paper.
//!
//! Quadratic in the number of nodes and intended purely as a *test oracle*
//! for the production refinement code in [`crate::refine`]: property tests
//! assert that `u ≈^k v` (this module) iff `u` and `v` share a block of
//! `k_bisimulation(g, k)`.

use dkindex_graph::{LabeledGraph, NodeId};

/// Pairwise k-bisimilarity table: `table[u][v] == true` iff `u ≈^k v`.
#[derive(Clone, Debug)]
pub struct KBisimTable {
    n: usize,
    bits: Vec<bool>,
}

impl KBisimTable {
    /// Compute the full `≈^k` relation on `g` by fixpoint-free induction:
    /// `≈^0` is label equality; `≈^{j+1}` requires `≈^j` plus mutual parent
    /// coverage (for every parent of `u` some `≈^j` parent of `v`, and vice
    /// versa — Definition 2).
    pub fn compute<G: LabeledGraph>(g: &G, k: usize) -> Self {
        let n = g.node_count();
        let idx = |u: NodeId, v: NodeId| u.index() * n + v.index();
        let mut cur = vec![false; n * n];
        for u in g.node_ids() {
            for v in g.node_ids() {
                cur[idx(u, v)] = g.label_of(u) == g.label_of(v);
            }
        }
        for _ in 0..k {
            let mut next = vec![false; n * n];
            for u in g.node_ids() {
                for v in g.node_ids() {
                    if !cur[idx(u, v)] {
                        continue;
                    }
                    let covers = |a: NodeId, b: NodeId| {
                        g.parents_of(a).iter().all(|&pa| {
                            g.parents_of(b).iter().any(|&pb| cur[idx(pa, pb)])
                        })
                    };
                    next[idx(u, v)] = covers(u, v) && covers(v, u);
                }
            }
            cur = next;
        }
        KBisimTable { n, bits: cur }
    }

    /// Is `u ≈^k v`?
    #[inline]
    pub fn bisimilar(&self, u: NodeId, v: NodeId) -> bool {
        self.bits[u.index() * self.n + v.index()]
    }
}

/// Convenience wrapper: are `u` and `v` k-bisimilar in `g`?
pub fn naive_k_bisimilar<G: LabeledGraph>(g: &G, u: NodeId, v: NodeId, k: usize) -> bool {
    KBisimTable::compute(g, k).bisimilar(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::k_bisimulation;
    use dkindex_graph::{DataGraph, EdgeKind};

    /// Figure 1 observation from the paper: "nodes 7 and 10 (movie) are
    /// bisimilar, while nodes 7 and 9 are not, because node 7 has a parent
    /// labeled actor but node 9 does not."
    #[test]
    fn paper_figure_one_movie_example() {
        let mut g = DataGraph::new();
        let actor1 = g.add_labeled_node("actor");
        let actor2 = g.add_labeled_node("actor");
        let director = g.add_labeled_node("director");
        let m7 = g.add_labeled_node("movie"); // under actor1
        let m9 = g.add_labeled_node("movie"); // under director only
        let m10 = g.add_labeled_node("movie"); // under actor2
        let r = g.root();
        g.add_edge(r, actor1, EdgeKind::Tree);
        g.add_edge(r, actor2, EdgeKind::Tree);
        g.add_edge(r, director, EdgeKind::Tree);
        g.add_edge(actor1, m7, EdgeKind::Tree);
        g.add_edge(actor2, m10, EdgeKind::Tree);
        g.add_edge(director, m9, EdgeKind::Tree);

        assert!(naive_k_bisimilar(&g, m7, m10, 5));
        assert!(!naive_k_bisimilar(&g, m7, m9, 1));
        assert!(naive_k_bisimilar(&g, m7, m9, 0)); // same label
    }

    #[test]
    fn relation_is_reflexive_and_symmetric() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        let t = KBisimTable::compute(&g, 3);
        for u in g.node_ids() {
            assert!(t.bisimilar(u, u));
            for v in g.node_ids() {
                assert_eq!(t.bisimilar(u, v), t.bisimilar(v, u));
            }
        }
    }

    #[test]
    fn naive_matches_partition_refinement() {
        // Pseudo-random cross-check — the core oracle property.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let mut g = DataGraph::new();
            let labels = ["a", "b", "c", "d"];
            let n = 10 + (next() % 15) as usize;
            let mut nodes = vec![g.root()];
            for i in 0..n {
                let node = g.add_labeled_node(labels[(next() % 4) as usize]);
                let parent = nodes[(next() as usize) % (i + 1)];
                g.add_edge(parent, node, EdgeKind::Tree);
                nodes.push(node);
            }
            for _ in 0..n / 3 {
                let u = nodes[(next() as usize) % nodes.len()];
                let v = nodes[(next() as usize) % nodes.len()];
                if u != v {
                    g.add_edge(u, v, EdgeKind::Reference);
                }
            }
            for k in 0..4 {
                let table = KBisimTable::compute(&g, k);
                let part = k_bisimulation(&g, k);
                for u in g.node_ids() {
                    for v in g.node_ids() {
                        assert_eq!(
                            table.bisimilar(u, v),
                            part.same_block(u, v),
                            "k={k} u={u:?} v={v:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k_bisimilarity_is_monotone_in_k() {
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let a2 = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(b, a2, EdgeKind::Tree);
        g.add_edge(r, b, EdgeKind::Tree);
        for k in 0..3 {
            let tk = KBisimTable::compute(&g, k);
            let tk1 = KBisimTable::compute(&g, k + 1);
            for u in g.node_ids() {
                for v in g.node_ids() {
                    // (k+1)-bisimilar implies k-bisimilar.
                    if tk1.bisimilar(u, v) {
                        assert!(tk.bisimilar(u, v));
                    }
                }
            }
        }
    }
}
