//! The Paige–Tarjan relational coarsest partition algorithm (SIAM J.
//! Comput. 16(6), 1987) — the O(m log n) construction the D(k) paper cites
//! for the 1-index (§4.1).
//!
//! We need the coarsest refinement of the label partition that is stable
//! with respect to `Succ`: for blocks `B, S`, either every member of `B` has
//! a parent in `S` or none does. That is the classic problem over the
//! *reversed* edge relation, so "pred" below always means "nodes with a
//! parent in …" (= `Succ` of the splitter).
//!
//! The implementation keeps the two-level structure of the original
//! algorithm: the fine partition `Q` (the answer under construction) and the
//! coarse partition `X` (unions of Q-blocks with respect to which Q is
//! already stable), per-`(node, X-block)` parent counts, and the
//! *process-the-smaller-half* rule that yields the O(m log n) bound — each
//! node lands in a splitter at most O(log n) times.
//!
//! Cross-checked against [`crate::refine::bisimulation_fixpoint`] and
//! [`crate::coarsest::coarsest_stable_refinement`] on randomized inputs.

use crate::partition::{BlockId, Partition};
use dkindex_graph::{LabeledGraph, NodeId};
use std::collections::{HashMap, VecDeque};

struct Pt<'g, G: LabeledGraph> {
    g: &'g G,
    /// node -> Q-block.
    block_of: Vec<u32>,
    /// Q-block -> members.
    members: Vec<Vec<NodeId>>,
    /// Q-block -> X-block.
    xblock_of: Vec<u32>,
    /// X-block -> live Q-blocks.
    xmembers: Vec<Vec<u32>>,
    /// (node, X-block) -> number of the node's parents inside the X-block.
    counts: HashMap<(u32, u32), u32>,
    /// X-blocks that may be compound.
    queue: VecDeque<u32>,
    queued: Vec<bool>,
}

impl<'g, G: LabeledGraph> Pt<'g, G> {
    fn new(g: &'g G) -> Self {
        // Q starts as the label partition pre-split by "has a parent", so Q
        // is stable with respect to the universe X-block.
        let labels = Partition::by_label(g);
        let (initial, _) = labels.split_by_key(|n| !g.parents_of(n).is_empty());

        let nblocks = initial.block_count();
        let block_of: Vec<u32> = (0..g.node_count())
            .map(|i| initial.block_of(NodeId::from_index(i)).index() as u32)
            .collect();
        let members: Vec<Vec<NodeId>> = initial
            .block_ids()
            .map(|b| initial.members(b).to_vec())
            .collect();

        let mut counts = HashMap::new();
        for n in g.node_ids() {
            let indeg = g.parents_of(n).len() as u32;
            if indeg > 0 {
                counts.insert((n.index() as u32, 0u32), indeg);
            }
        }
        let mut pt = Pt {
            g,
            block_of,
            members,
            xblock_of: vec![0; nblocks],
            xmembers: vec![(0..nblocks as u32).collect()],
            counts,
            queue: VecDeque::new(),
            queued: vec![false],
        };
        pt.enqueue(0);
        pt
    }

    fn enqueue(&mut self, x: u32) {
        if !self.queued[x as usize] && self.xmembers[x as usize].len() >= 2 {
            self.queued[x as usize] = true;
            self.queue.push_back(x);
        }
    }

    /// Move `hit` members of Q-block `d` into a fresh Q-block within the
    /// same X-block. `hit` must be a strict non-empty subset.
    fn split_qblock(&mut self, d: u32, hit: &[NodeId]) -> u32 {
        let new_q = self.members.len() as u32;
        let hit_set: std::collections::HashSet<NodeId> = hit.iter().copied().collect();
        let old = std::mem::take(&mut self.members[d as usize]);
        let (moved, kept): (Vec<NodeId>, Vec<NodeId>) =
            old.into_iter().partition(|n| hit_set.contains(n));
        debug_assert!(!moved.is_empty() && !kept.is_empty());
        for &n in &moved {
            self.block_of[n.index()] = new_q;
        }
        self.members[d as usize] = kept;
        self.members.push(moved);
        let x = self.xblock_of[d as usize];
        self.xblock_of.push(x);
        self.xmembers[x as usize].push(new_q);
        self.enqueue(x);
        new_q
    }

    fn run(mut self) -> Partition {
        while let Some(s) = self.queue.pop_front() {
            self.queued[s as usize] = false;
            if self.xmembers[s as usize].len() < 2 {
                continue;
            }
            // Pick the smallest Q-block in S as the splitter B.
            let (pos, &b) = self.xmembers[s as usize]
                .iter()
                .enumerate()
                .min_by_key(|&(_, &q)| self.members[q as usize].len())
                .expect("compound block has members");
            self.xmembers[s as usize].swap_remove(pos);
            // β becomes its own X-block {B}.
            let beta = self.xmembers.len() as u32;
            self.xmembers.push(vec![b]);
            self.queued.push(false);
            self.xblock_of[b as usize] = beta;
            // S (now S' = S − B) may still be compound.
            self.enqueue(s);

            // Parent counts into B, per node with a parent in B.
            let mut c_b: HashMap<u32, u32> = HashMap::new();
            for &member in &self.members[b as usize] {
                for &child in self.g.children_of(member) {
                    *c_b.entry(child.index() as u32).or_insert(0) += 1;
                }
            }
            if c_b.is_empty() {
                continue;
            }

            // First split: D ∩ pred(B) vs D − pred(B).
            let mut by_block: HashMap<u32, Vec<NodeId>> = HashMap::new();
            for &node in c_b.keys() {
                by_block
                    .entry(self.block_of[node as usize])
                    .or_default()
                    .push(NodeId::from_index(node as usize));
            }
            let mut touched: Vec<u32> = by_block.keys().copied().collect();
            touched.sort_unstable(); // determinism
            let mut pred_b_blocks: Vec<u32> = Vec::new();
            for d in touched {
                let hit = &by_block[&d];
                if hit.len() == self.members[d as usize].len() {
                    pred_b_blocks.push(d);
                } else {
                    let new_q = self.split_qblock(d, hit);
                    pred_b_blocks.push(new_q);
                }
            }

            // Update counts: move B's contribution from S to β.
            for (&node, &cb) in &c_b {
                let total = self
                    .counts
                    .remove(&(node, s))
                    .expect("node with a parent in B ⊆ S has an S count");
                debug_assert!(total >= cb);
                self.counts.insert((node, beta), cb);
                if total > cb {
                    self.counts.insert((node, s), total - cb);
                }
            }

            // Second split: within pred(B), separate nodes with no parent
            // left in S' (count(x, S') == 0) from the rest.
            for d in pred_b_blocks {
                let (only_b, both): (Vec<NodeId>, Vec<NodeId>) = self.members[d as usize]
                    .iter()
                    .partition(|&&n| !self.counts.contains_key(&(n.index() as u32, s)));
                if !only_b.is_empty() && !both.is_empty() {
                    self.split_qblock(d, &only_b);
                }
            }
        }

        Partition::from_block_of(
            self.block_of
                .iter()
                .map(|&b| BlockId::from_index(b as usize))
                .collect(),
        )
    }
}

/// The coarsest refinement of the label partition stable with respect to
/// every block's successor set, via Paige–Tarjan in O(m log n). Equals
/// [`crate::refine::bisimulation_fixpoint`] — the extents of the 1-index.
pub fn paige_tarjan<G: LabeledGraph>(g: &G) -> Partition {
    Pt::new(g).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsest::coarsest_stable_refinement;
    use crate::refine::bisimulation_fixpoint;
    use dkindex_graph::{DataGraph, EdgeKind};

    fn assert_all_agree(g: &DataGraph) {
        let pt = paige_tarjan(g);
        pt.check_consistency().unwrap();
        let fixpoint = bisimulation_fixpoint(g);
        let worklist = coarsest_stable_refinement(g);
        assert!(
            pt.same_equivalence(&fixpoint),
            "PT ({} blocks) != signature fixpoint ({} blocks)",
            pt.block_count(),
            fixpoint.block_count()
        );
        assert!(pt.same_equivalence(&worklist));
    }

    #[test]
    fn chain() {
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let a2 = g.add_labeled_node("a");
        let a3 = g.add_labeled_node("a");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(a1, a2, EdgeKind::Tree);
        g.add_edge(a2, a3, EdgeKind::Tree);
        assert_all_agree(&g);
        assert_eq!(paige_tarjan(&g).block_count(), 4);
    }

    #[test]
    fn regular_tree_stays_coarse() {
        let mut g = DataGraph::new();
        let r = g.root();
        for _ in 0..8 {
            let item = g.add_labeled_node("item");
            let name = g.add_labeled_node("name");
            g.add_edge(r, item, EdgeKind::Tree);
            g.add_edge(item, name, EdgeKind::Tree);
        }
        assert_eq!(paige_tarjan(&g).block_count(), 3);
        assert_all_agree(&g);
    }

    #[test]
    fn movie_shape_with_reference() {
        let mut g = DataGraph::new();
        let actor = g.add_labeled_node("actor");
        let director = g.add_labeled_node("director");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, actor, EdgeKind::Tree);
        g.add_edge(r, director, EdgeKind::Tree);
        g.add_edge(actor, m1, EdgeKind::Tree);
        g.add_edge(director, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g.add_edge(director, m1, EdgeKind::Reference);
        assert_all_agree(&g);
    }

    #[test]
    fn cycles() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(b, a, EdgeKind::Reference);
        g.add_edge(a, a, EdgeKind::Reference);
        assert_all_agree(&g);
    }

    #[test]
    fn randomized_cross_check() {
        let mut seed = 0xDEADBEEFCAFEBABEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..40 {
            let mut g = DataGraph::new();
            let labels = ["a", "b", "c", "d"];
            let n = 15 + (next() % 60) as usize;
            let mut nodes = vec![g.root()];
            for i in 0..n {
                let node = g.add_labeled_node(labels[(next() % 4) as usize]);
                let parent = nodes[(next() as usize) % (i + 1)];
                g.add_edge(parent, node, EdgeKind::Tree);
                nodes.push(node);
            }
            for _ in 0..n / 3 {
                let u = nodes[(next() as usize) % nodes.len()];
                let v = nodes[(next() as usize) % nodes.len()];
                if u != v {
                    g.add_edge(u, v, EdgeKind::Reference);
                }
            }
            let pt = paige_tarjan(&g);
            let fixpoint = bisimulation_fixpoint(&g);
            assert!(
                pt.same_equivalence(&fixpoint),
                "round {round}: PT {} blocks vs fixpoint {}",
                pt.block_count(),
                fixpoint.block_count()
            );
        }
    }

    #[test]
    fn disconnected_nodes_are_handled() {
        let mut g = DataGraph::new();
        g.add_labeled_node("orphan");
        g.add_labeled_node("orphan");
        let a = g.add_labeled_node("a");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        assert_all_agree(&g);
    }
}
