//! The [`Partition`] type: a partition of a graph's node set into blocks.
//!
//! Every structural summary in this reproduction — label-split, A(k), 1-index
//! and D(k) — is "a collection of equivalence classes" (paper §1), i.e. a
//! partition of the data nodes. This module provides the partition container;
//! the refinement algorithms that produce bisimulation partitions live in
//! [`crate::refine`].

use dkindex_graph::{LabeledGraph, NodeId};
use std::fmt;

/// Dense identifier of a block (equivalence class) within a [`Partition`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Numeric index of this block.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a `BlockId` from an index. The caller must ensure the
    /// index is in range for the partition it is used with.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        BlockId(index as u32)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A partition of the nodes `0..n` into non-empty blocks.
///
/// Maintains both directions of the mapping — node → block and block →
/// members — because refinement reads the former and splitting rewrites the
/// latter. Blocks are dense: ids `0..block_count()`, every block non-empty.
#[derive(Clone, PartialEq, Eq)]
pub struct Partition {
    block_of: Vec<BlockId>,
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// The trivial partition placing every node of `g` in one block.
    pub fn unit<G: LabeledGraph>(g: &G) -> Self {
        let n = g.node_count();
        Partition {
            block_of: vec![BlockId(0); n],
            members: vec![(0..n).map(NodeId::from_index).collect()],
        }
    }

    /// The 0-bisimulation partition of `g`: nodes grouped by label
    /// (the *label-split* graph of paper §4.1). Blocks are numbered in order
    /// of first appearance by node id, so the result is deterministic.
    pub fn by_label<G: LabeledGraph>(g: &G) -> Self {
        let mut first_block_of_label: Vec<Option<BlockId>> = vec![None; g.labels().len()];
        let mut block_of = Vec::with_capacity(g.node_count());
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for node in g.node_ids() {
            let label = g.label_of(node);
            let block = match first_block_of_label[label.index()] {
                Some(b) => b,
                None => {
                    let b = BlockId(members.len() as u32);
                    first_block_of_label[label.index()] = Some(b);
                    members.push(Vec::new());
                    b
                }
            };
            block_of.push(block);
            members[block.index()].push(node);
        }
        Partition { block_of, members }
    }

    /// Build a partition directly from a node → block-index map.
    ///
    /// Block indices must be dense (`0..max+1`) with no empty block.
    /// Intended for tests and for reconstructing partitions from stored
    /// index graphs.
    pub fn from_block_of(block_of: Vec<BlockId>) -> Self {
        let num_blocks = block_of
            .iter()
            .map(|b| b.index() + 1)
            .max()
            .unwrap_or(0);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_blocks];
        for (i, b) in block_of.iter().enumerate() {
            members[b.index()].push(NodeId::from_index(i));
        }
        assert!(
            members.iter().all(|m| !m.is_empty()),
            "blocks must be dense and non-empty"
        );
        Partition { block_of, members }
    }

    /// Number of nodes covered by this partition.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.block_of.len()
    }

    /// Number of blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.members.len()
    }

    /// Block containing `node`.
    #[inline]
    pub fn block_of(&self, node: NodeId) -> BlockId {
        self.block_of[node.index()]
    }

    /// Members of `block`, in ascending node order.
    #[inline]
    pub fn members(&self, block: BlockId) -> &[NodeId] {
        &self.members[block.index()]
    }

    /// Iterate over block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.members.len() as u32).map(BlockId)
    }

    /// True if two nodes share a block.
    #[inline]
    pub fn same_block(&self, a: NodeId, b: NodeId) -> bool {
        self.block_of(a) == self.block_of(b)
    }

    /// True if `self` refines `coarser`: every block of `self` is contained
    /// in a single block of `coarser`. (Equal partitions refine each other.)
    pub fn is_refinement_of(&self, coarser: &Partition) -> bool {
        if self.node_count() != coarser.node_count() {
            return false;
        }
        self.members.iter().all(|block| {
            let mut it = block.iter();
            let Some(&first) = it.next() else { return true };
            let target = coarser.block_of(first);
            it.all(|&n| coarser.block_of(n) == target)
        })
    }

    /// True if the two partitions induce the same equivalence relation
    /// (block ids may differ).
    pub fn same_equivalence(&self, other: &Partition) -> bool {
        self.is_refinement_of(other) && other.is_refinement_of(self)
    }

    /// Verify internal consistency (every node in exactly one block, blocks
    /// non-empty, maps agree). Debug/test helper.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut seen = vec![false; self.node_count()];
        for (bi, block) in self.members.iter().enumerate() {
            if block.is_empty() {
                return Err(format!("block {bi} is empty"));
            }
            for &n in block {
                if seen[n.index()] {
                    return Err(format!("node {n:?} appears in two blocks"));
                }
                seen[n.index()] = true;
                if self.block_of(n).index() != bi {
                    return Err(format!("node {n:?}: block_of disagrees with members"));
                }
            }
        }
        if let Some(i) = seen.iter().position(|&s| !s) {
            return Err(format!("node n{i} is in no block"));
        }
        Ok(())
    }

    /// Assemble a partition from maps already known to be consistent
    /// (node → block and block → members agree, blocks dense and non-empty).
    /// Used by the refinement engine, which builds both sides in one pass.
    pub(crate) fn from_parts(block_of: Vec<BlockId>, members: Vec<Vec<NodeId>>) -> Self {
        debug_assert!({
            let p = Partition {
                block_of: block_of.clone(),
                members: members.clone(),
            };
            p.check_consistency().is_ok()
        });
        Partition { block_of, members }
    }

    /// Replace this partition with one obtained by regrouping nodes by `key`:
    /// nodes with equal `(old block, key)` pairs share a new block. New block
    /// ids are assigned in order of first appearance by node id, so the
    /// operation is deterministic. Returns the new partition and whether it
    /// is strictly finer than `self`.
    pub fn split_by_key<K: std::hash::Hash + Eq>(
        &self,
        key: impl Fn(NodeId) -> K,
    ) -> (Partition, bool) {
        use std::collections::HashMap;
        let mut ids: HashMap<(BlockId, K), BlockId> = HashMap::new();
        let mut block_of = Vec::with_capacity(self.node_count());
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for i in 0..self.node_count() {
            let node = NodeId::from_index(i);
            let sig = (self.block_of(node), key(node));
            let block = *ids.entry(sig).or_insert_with(|| {
                let b = BlockId(members.len() as u32);
                members.push(Vec::new());
                b
            });
            block_of.push(block);
            members[block.index()].push(node);
        }
        let changed = members.len() != self.block_count();
        (Partition { block_of, members }, changed)
    }
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Partition({} nodes, {} blocks)", self.node_count(), self.block_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::{DataGraph, EdgeKind};

    fn two_pairs() -> DataGraph {
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let a2 = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(r, a2, EdgeKind::Tree);
        g.add_edge(a1, b, EdgeKind::Tree);
        g
    }

    #[test]
    fn unit_partition_has_one_block() {
        let g = two_pairs();
        let p = Partition::unit(&g);
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.members(BlockId(0)).len(), g.node_count());
        p.check_consistency().unwrap();
    }

    #[test]
    fn by_label_groups_equal_labels() {
        let g = two_pairs();
        let p = Partition::by_label(&g);
        assert_eq!(p.block_count(), 3); // ROOT, a, b
        let a1 = NodeId::from_index(1);
        let a2 = NodeId::from_index(2);
        let b = NodeId::from_index(3);
        assert!(p.same_block(a1, a2));
        assert!(!p.same_block(a1, b));
        p.check_consistency().unwrap();
    }

    #[test]
    fn by_label_is_deterministic() {
        let g = two_pairs();
        let p1 = Partition::by_label(&g);
        let p2 = Partition::by_label(&g);
        assert_eq!(p1, p2);
    }

    #[test]
    fn from_block_of_round_trips() {
        let g = two_pairs();
        let p = Partition::by_label(&g);
        let q = Partition::from_block_of((0..g.node_count())
            .map(|i| p.block_of(NodeId::from_index(i)))
            .collect());
        assert_eq!(p, q);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn from_block_of_rejects_gaps() {
        // Block 1 missing.
        Partition::from_block_of(vec![BlockId(0), BlockId(2)]);
    }

    #[test]
    fn refinement_relation() {
        let g = two_pairs();
        let unit = Partition::unit(&g);
        let labels = Partition::by_label(&g);
        assert!(labels.is_refinement_of(&unit));
        assert!(!unit.is_refinement_of(&labels));
        assert!(labels.is_refinement_of(&labels));
        assert!(labels.same_equivalence(&labels));
    }

    #[test]
    fn split_by_key_refines_deterministically() {
        let g = two_pairs();
        let labels = Partition::by_label(&g);
        // Key = has a child: splits the `a` block into {a1}, {a2}.
        let (finer, changed) = labels.split_by_key(|n| !g.children_of(n).is_empty());
        assert!(changed);
        assert_eq!(finer.block_count(), 4);
        assert!(finer.is_refinement_of(&labels));
        finer.check_consistency().unwrap();
        let a1 = NodeId::from_index(1);
        let a2 = NodeId::from_index(2);
        assert!(!finer.same_block(a1, a2));
    }

    #[test]
    fn split_by_constant_key_is_identity() {
        let g = two_pairs();
        let labels = Partition::by_label(&g);
        let (same, changed) = labels.split_by_key(|_| 0u8);
        assert!(!changed);
        assert!(same.same_equivalence(&labels));
    }

    #[test]
    fn consistency_catches_corruption() {
        let p = Partition::from_block_of(vec![BlockId(0), BlockId(0), BlockId(1)]);
        assert!(p.check_consistency().is_ok());
    }
}
