//! Backward-signature refinement: the engine behind A(k), 1-index and D(k)
//! construction.
//!
//! One *round* of refinement computes, for every node, the set of blocks its
//! parents currently occupy, and regroups nodes by `(current block, parent
//! block set)`. By induction this turns the label partition into exactly the
//! k-bisimulation partition after k rounds (paper Definition 2): two nodes
//! stay together through round k+1 iff they were together after round k and
//! their parents cover the same round-k classes — the inductive definition of
//! `≈^{k+1}`.
//!
//! Round cost is O(m log m) (sorting each node's parent-block list), so k
//! rounds match the paper's O(km) construction bound up to the log factor.

use crate::partition::{BlockId, Partition};
use dkindex_graph::{LabeledGraph, NodeId};

/// The deduplicated, sorted set of blocks occupied by `node`'s parents under
/// `prev` — the refinement *signature* of `node`.
pub fn parent_signature<G: LabeledGraph>(g: &G, prev: &Partition, node: NodeId) -> Vec<BlockId> {
    let mut sig: Vec<BlockId> = g
        .parents_of(node)
        .iter()
        .map(|&p| prev.block_of(p))
        .collect();
    sig.sort_unstable();
    sig.dedup();
    sig
}

/// One refinement round applied to every block. Returns the refined partition
/// and whether anything split.
pub fn refine_round<G: LabeledGraph>(g: &G, prev: &Partition) -> (Partition, bool) {
    prev.split_by_key(|n| parent_signature(g, prev, n))
}

/// One refinement round applied only to blocks for which `refine_block`
/// returns true; other blocks pass through unchanged.
///
/// This is the primitive behind D(k) construction (Algorithm 2): in round k
/// only index nodes whose local-similarity requirement is ≥ k are split.
/// Splitting is still keyed on the signature against the *entire* previous
/// partition, exactly as Algorithm 2 splits against the full copy `X` of the
/// current index graph.
pub fn refine_round_selective<G: LabeledGraph>(
    g: &G,
    prev: &Partition,
    refine_block: impl Fn(BlockId) -> bool,
) -> (Partition, bool) {
    prev.split_by_key(|n| {
        let b = prev.block_of(n);
        if refine_block(b) {
            Some(parent_signature(g, prev, n))
        } else {
            None // all members of a skipped block share the key
        }
    })
}

/// The k-bisimulation partition of `g` (paper Definition 2), i.e. the extents
/// of the A(k)-index. Stops early if a fixpoint is reached before k rounds.
pub fn k_bisimulation<G: LabeledGraph>(g: &G, k: usize) -> Partition {
    let mut p = Partition::by_label(g);
    for _ in 0..k {
        let (next, changed) = refine_round(g, &p);
        p = next;
        if !changed {
            break;
        }
    }
    p
}

/// The full (unbounded) bisimulation partition of `g` — the extents of the
/// 1-index — computed by iterating [`refine_round`] to fixpoint.
///
/// Takes at most `n` rounds; see [`crate::coarsest`] for the worklist
/// algorithm in the style of Paige–Tarjan that the paper cites for the
/// 1-index, against which this function is cross-checked in tests.
pub fn bisimulation_fixpoint<G: LabeledGraph>(g: &G) -> Partition {
    let mut p = Partition::by_label(g);
    loop {
        let (next, changed) = refine_round(g, &p);
        p = next;
        if !changed {
            return p;
        }
    }
}

/// The number of rounds needed to reach the bisimulation fixpoint from the
/// label partition — the graph's *bisimulation depth*. A(k) with k at least
/// this value equals the 1-index.
pub fn bisimulation_depth<G: LabeledGraph>(g: &G) -> usize {
    let mut p = Partition::by_label(g);
    let mut rounds = 0;
    loop {
        let (next, changed) = refine_round(g, &p);
        if !changed {
            return rounds;
        }
        p = next;
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::{DataGraph, EdgeKind};

    /// The movie fragment of the paper's Figure 1 discussion: two `movie`
    /// nodes, one reachable through an `actor` parent and one not, so they
    /// are 0-bisimilar but not 1-bisimilar.
    fn movie_like() -> (DataGraph, NodeId, NodeId) {
        let mut g = DataGraph::new();
        let actor = g.add_labeled_node("actor");
        let director = g.add_labeled_node("director");
        let m_by_actor = g.add_labeled_node("movie");
        let m_by_director = g.add_labeled_node("movie");
        let r = g.root();
        g.add_edge(r, actor, EdgeKind::Tree);
        g.add_edge(r, director, EdgeKind::Tree);
        g.add_edge(actor, m_by_actor, EdgeKind::Tree);
        g.add_edge(director, m_by_director, EdgeKind::Tree);
        (g, m_by_actor, m_by_director)
    }

    #[test]
    fn zero_rounds_is_label_partition() {
        let (g, ..) = movie_like();
        assert!(k_bisimulation(&g, 0).same_equivalence(&Partition::by_label(&g)));
    }

    #[test]
    fn one_round_separates_by_parent_labels() {
        let (g, ma, md) = movie_like();
        let p0 = k_bisimulation(&g, 0);
        let p1 = k_bisimulation(&g, 1);
        assert!(p0.same_block(ma, md));
        assert!(!p1.same_block(ma, md));
        assert!(p1.is_refinement_of(&p0));
    }

    #[test]
    fn rounds_are_monotone_refinements() {
        let (g, ..) = movie_like();
        let mut prev = k_bisimulation(&g, 0);
        for k in 1..5 {
            let next = k_bisimulation(&g, k);
            assert!(next.is_refinement_of(&prev), "round {k} must refine round {}", k - 1);
            prev = next;
        }
    }

    #[test]
    fn fixpoint_is_stable_under_further_rounds() {
        let (g, ..) = movie_like();
        let fix = bisimulation_fixpoint(&g);
        let (again, changed) = refine_round(&g, &fix);
        assert!(!changed);
        assert!(again.same_equivalence(&fix));
    }

    #[test]
    fn k_bisimulation_saturates_at_depth() {
        let (g, ..) = movie_like();
        let d = bisimulation_depth(&g);
        let at_depth = k_bisimulation(&g, d);
        let beyond = k_bisimulation(&g, d + 3);
        assert!(at_depth.same_equivalence(&beyond));
        assert!(at_depth.same_equivalence(&bisimulation_fixpoint(&g)));
    }

    #[test]
    fn parent_signature_dedups_blocks() {
        // Node with two parents in the same block: signature has one entry.
        let mut g = DataGraph::new();
        let p1 = g.add_labeled_node("p");
        let p2 = g.add_labeled_node("p");
        let c = g.add_labeled_node("c");
        let r = g.root();
        g.add_edge(r, p1, EdgeKind::Tree);
        g.add_edge(r, p2, EdgeKind::Tree);
        g.add_edge(p1, c, EdgeKind::Tree);
        g.add_edge(p2, c, EdgeKind::Reference);
        let labels = Partition::by_label(&g);
        assert_eq!(parent_signature(&g, &labels, c).len(), 1);
    }

    #[test]
    fn selective_refinement_skips_unflagged_blocks() {
        let (g, ma, md) = movie_like();
        let p0 = Partition::by_label(&g);
        let movie_block = p0.block_of(ma);
        // Refine only the movie block: movies split, actors/directors do not.
        let (p1, changed) = refine_round_selective(&g, &p0, |b| b == movie_block);
        assert!(changed);
        assert!(!p1.same_block(ma, md));
        // All other blocks unchanged => block count grew by exactly 1.
        assert_eq!(p1.block_count(), p0.block_count() + 1);
    }

    #[test]
    fn selective_refinement_with_all_flags_equals_full_round() {
        let (g, ..) = movie_like();
        let p0 = Partition::by_label(&g);
        let (full, _) = refine_round(&g, &p0);
        let (sel, _) = refine_round_selective(&g, &p0, |_| true);
        assert!(full.same_equivalence(&sel));
    }

    #[test]
    fn diamond_with_reference_edge_refines_correctly() {
        // b1 and b2 share labels; b2 additionally has a `c`-labeled parent
        // via a reference edge, so they separate at k=1.
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let c = g.add_labeled_node("c");
        let b1 = g.add_labeled_node("b");
        let b2 = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(r, c, EdgeKind::Tree);
        g.add_edge(a, b1, EdgeKind::Tree);
        g.add_edge(a, b2, EdgeKind::Tree);
        g.add_edge(c, b2, EdgeKind::Reference);
        let p1 = k_bisimulation(&g, 1);
        assert!(!p1.same_block(b1, b2));
    }

    #[test]
    fn bisimulation_depth_of_chain() {
        // ROOT -> a -> a -> a : the three `a`s separate one per round.
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let a2 = g.add_labeled_node("a");
        let a3 = g.add_labeled_node("a");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(a1, a2, EdgeKind::Tree);
        g.add_edge(a2, a3, EdgeKind::Tree);
        assert_eq!(bisimulation_depth(&g), 2);
        assert_eq!(bisimulation_fixpoint(&g).block_count(), 4);
    }
}
