//! Abstract syntax for regular path expressions (paper §3):
//!
//! ```text
//! R  =  label  |  _  |  R.R  |  R|R  |  (R)  |  R?  |  R*
//! ```
//!
//! where `_` matches any single label. A path expression denotes a regular
//! language over the label alphabet; it matches a data node `n` when the
//! label path of some word in the language matches a node path ending in `n`.

use std::fmt;

/// A regular path expression over label names.
///
/// The derived `Ord` gives path expressions a total order (structural,
/// variant-then-operand), which deterministic consumers — the tuner's
/// observation window, sorted query streams — use to key `BTreeMap`s
/// instead of hash containers whose iteration order varies per process.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathExpr {
    /// A single label, e.g. `movie`.
    Label(String),
    /// The wildcard `_`, matching any single label.
    Wildcard,
    /// Sequence `R.S`.
    Seq(Box<PathExpr>, Box<PathExpr>),
    /// Alternation `R|S`.
    Alt(Box<PathExpr>, Box<PathExpr>),
    /// Optional `R?` (zero or one).
    Opt(Box<PathExpr>),
    /// Repetition `R*` (zero or more).
    Star(Box<PathExpr>),
}

impl PathExpr {
    /// Build the sequence `a.b` without manual boxing.
    pub fn seq(a: PathExpr, b: PathExpr) -> PathExpr {
        PathExpr::Seq(Box::new(a), Box::new(b))
    }

    /// Build the alternation `a|b` without manual boxing.
    pub fn alt(a: PathExpr, b: PathExpr) -> PathExpr {
        PathExpr::Alt(Box::new(a), Box::new(b))
    }

    /// Build `a?`.
    pub fn opt(a: PathExpr) -> PathExpr {
        PathExpr::Opt(Box::new(a))
    }

    /// Build `a*`.
    pub fn star(a: PathExpr) -> PathExpr {
        PathExpr::Star(Box::new(a))
    }

    /// Build a label atom.
    pub fn label(name: impl Into<String>) -> PathExpr {
        PathExpr::Label(name.into())
    }

    /// Build the linear path `l1.l2...ln` from a slice of label names.
    ///
    /// # Panics
    /// Panics on an empty slice — the grammar has no empty expression.
    pub fn path(labels: &[&str]) -> PathExpr {
        let mut it = labels.iter();
        let first = it.next().expect("path needs at least one label");
        let mut expr = PathExpr::label(*first);
        for l in it {
            expr = PathExpr::seq(expr, PathExpr::label(*l));
        }
        expr
    }

    /// Length (in labels) of the *longest* word in the language, or `None`
    /// when the language is unbounded (contains a `*` on a non-empty
    /// sub-expression).
    ///
    /// The paper measures query length in **edges**: a label path
    /// `l1.l2...l_{m+1}` has length `m`. The soundness test for an index
    /// node therefore compares its local similarity against
    /// `max_word_len() - 1`.
    pub fn max_word_len(&self) -> Option<usize> {
        match self {
            PathExpr::Label(_) | PathExpr::Wildcard => Some(1),
            PathExpr::Seq(a, b) => Some(a.max_word_len()?.checked_add(b.max_word_len()?)?),
            PathExpr::Alt(a, b) => Some(a.max_word_len()?.max(b.max_word_len()?)),
            PathExpr::Opt(a) => a.max_word_len(),
            PathExpr::Star(a) => {
                // `R*` is unbounded unless R's language is {ε} — which the
                // grammar cannot express, so any Star is unbounded.
                let _ = a;
                None
            }
        }
    }

    /// Length (in labels) of the *shortest* word in the language.
    pub fn min_word_len(&self) -> usize {
        match self {
            PathExpr::Label(_) | PathExpr::Wildcard => 1,
            PathExpr::Seq(a, b) => a.min_word_len() + b.min_word_len(),
            PathExpr::Alt(a, b) => a.min_word_len().min(b.min_word_len()),
            PathExpr::Opt(_) | PathExpr::Star(_) => 0,
        }
    }

    /// All label names mentioned by the expression, in first-mention order.
    pub fn labels_mentioned(&self) -> Vec<&str> {
        fn walk<'a>(e: &'a PathExpr, out: &mut Vec<&'a str>) {
            match e {
                PathExpr::Label(l) => {
                    if !out.contains(&l.as_str()) {
                        out.push(l);
                    }
                }
                PathExpr::Wildcard => {}
                PathExpr::Seq(a, b) | PathExpr::Alt(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                PathExpr::Opt(a) | PathExpr::Star(a) => walk(a, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// The label names that can end a word of the language — the labels of
    /// nodes the query can *return*. Query-load mining attributes a query's
    /// similarity requirement to exactly these labels (`None` entry means a
    /// wildcard can end the word, so every label is returnable).
    pub fn last_labels(&self) -> LastLabels {
        match self {
            PathExpr::Label(l) => LastLabels {
                labels: vec![l.clone()],
                wildcard: false,
                nullable: false,
            },
            PathExpr::Wildcard => LastLabels {
                labels: Vec::new(),
                wildcard: true,
                nullable: false,
            },
            PathExpr::Seq(a, b) => {
                let lb = b.last_labels();
                if lb.nullable {
                    let la = a.last_labels();
                    LastLabels {
                        labels: merge(la.labels, lb.labels),
                        wildcard: la.wildcard || lb.wildcard,
                        nullable: la.nullable, // seq nullable iff both nullable
                    }
                } else {
                    lb
                }
            }
            PathExpr::Alt(a, b) => {
                let la = a.last_labels();
                let lb = b.last_labels();
                LastLabels {
                    labels: merge(la.labels, lb.labels),
                    wildcard: la.wildcard || lb.wildcard,
                    nullable: la.nullable || lb.nullable,
                }
            }
            PathExpr::Opt(a) | PathExpr::Star(a) => {
                let la = a.last_labels();
                LastLabels {
                    labels: la.labels,
                    wildcard: la.wildcard,
                    nullable: true,
                }
            }
        }
    }
}

fn merge(mut a: Vec<String>, b: Vec<String>) -> Vec<String> {
    for l in b {
        if !a.contains(&l) {
            a.push(l);
        }
    }
    a
}

/// Result of [`PathExpr::last_labels`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LastLabels {
    /// Concrete labels that can end a word.
    pub labels: Vec<String>,
    /// True if a wildcard can end a word (any label is returnable).
    pub wildcard: bool,
    /// True if the language contains the empty word.
    pub nullable: bool,
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print with minimal parentheses: alternation < sequence < postfix.
        fn prec(e: &PathExpr) -> u8 {
            match e {
                PathExpr::Alt(..) => 0,
                PathExpr::Seq(..) => 1,
                _ => 2,
            }
        }
        fn go(e: &PathExpr, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
            let p = prec(e);
            if p < min {
                write!(f, "(")?;
            }
            match e {
                PathExpr::Label(l) => write!(f, "{l}")?,
                PathExpr::Wildcard => write!(f, "_")?,
                PathExpr::Seq(a, b) => {
                    go(a, f, 1)?;
                    write!(f, ".")?;
                    go(b, f, 1)?;
                }
                PathExpr::Alt(a, b) => {
                    go(a, f, 0)?;
                    write!(f, "|")?;
                    go(b, f, 0)?;
                }
                PathExpr::Opt(a) => {
                    go(a, f, 2)?;
                    write!(f, "?")?;
                }
                PathExpr::Star(a) => {
                    go(a, f, 2)?;
                    write!(f, "*")?;
                }
            }
            if p < min {
                write!(f, ")")?;
            }
            Ok(())
        }
        go(self, f, 0)
    }
}

impl fmt::Debug for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PathExpr({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_linear_path() {
        let e = PathExpr::path(&["director", "movie", "title"]);
        assert_eq!(e.to_string(), "director.movie.title");
    }

    #[test]
    fn display_paper_example_with_optional_wildcard() {
        // movieDB.(_)?.movie.actor.name from the paper's §3.
        let e = PathExpr::seq(
            PathExpr::seq(
                PathExpr::seq(
                    PathExpr::seq(PathExpr::label("movieDB"), PathExpr::opt(PathExpr::Wildcard)),
                    PathExpr::label("movie"),
                ),
                PathExpr::label("actor"),
            ),
            PathExpr::label("name"),
        );
        assert_eq!(e.to_string(), "movieDB._?.movie.actor.name");
    }

    #[test]
    fn display_parenthesizes_alternation_in_sequence() {
        let e = PathExpr::seq(
            PathExpr::alt(PathExpr::label("a"), PathExpr::label("b")),
            PathExpr::label("c"),
        );
        assert_eq!(e.to_string(), "(a|b).c");
    }

    #[test]
    fn word_length_bounds() {
        let e = PathExpr::path(&["a", "b", "c"]);
        assert_eq!(e.max_word_len(), Some(3));
        assert_eq!(e.min_word_len(), 3);

        let opt = PathExpr::seq(PathExpr::label("a"), PathExpr::opt(PathExpr::label("b")));
        assert_eq!(opt.max_word_len(), Some(2));
        assert_eq!(opt.min_word_len(), 1);

        let star = PathExpr::seq(PathExpr::label("a"), PathExpr::star(PathExpr::label("b")));
        assert_eq!(star.max_word_len(), None);
        assert_eq!(star.min_word_len(), 1);

        let alt = PathExpr::alt(PathExpr::label("a"), PathExpr::path(&["b", "c"]));
        assert_eq!(alt.max_word_len(), Some(2));
        assert_eq!(alt.min_word_len(), 1);
    }

    #[test]
    fn labels_mentioned_dedups_in_order() {
        let e = PathExpr::seq(
            PathExpr::path(&["a", "b"]),
            PathExpr::alt(PathExpr::label("a"), PathExpr::label("c")),
        );
        assert_eq!(e.labels_mentioned(), vec!["a", "b", "c"]);
    }

    #[test]
    fn last_labels_of_linear_path() {
        let e = PathExpr::path(&["director", "movie", "title"]);
        let last = e.last_labels();
        assert_eq!(last.labels, vec!["title".to_string()]);
        assert!(!last.wildcard && !last.nullable);
    }

    #[test]
    fn last_labels_skip_nullable_tail() {
        // a.b? can end in b or in a.
        let e = PathExpr::seq(PathExpr::label("a"), PathExpr::opt(PathExpr::label("b")));
        let last = e.last_labels();
        assert!(last.labels.contains(&"a".to_string()));
        assert!(last.labels.contains(&"b".to_string()));
        assert!(!last.nullable);
    }

    #[test]
    fn last_labels_wildcard_tail() {
        let e = PathExpr::seq(PathExpr::label("a"), PathExpr::Wildcard);
        let last = e.last_labels();
        assert!(last.wildcard);
        assert!(last.labels.is_empty());
    }

    #[test]
    fn last_labels_alt_unions() {
        let e = PathExpr::alt(PathExpr::label("x"), PathExpr::label("y"));
        let last = e.last_labels();
        assert_eq!(last.labels.len(), 2);
    }

    #[test]
    fn star_is_nullable() {
        let e = PathExpr::star(PathExpr::label("a"));
        assert!(e.last_labels().nullable);
        assert_eq!(e.min_word_len(), 0);
    }
}
