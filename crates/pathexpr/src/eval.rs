//! Path-expression evaluation over any [`LabeledGraph`] with the paper's
//! in-memory cost model.
//!
//! The paper (§6.1, following the A(k)-index evaluation) defines the cost of
//! a query as *the number of nodes visited in the index or data graph during
//! path expression evaluation*; extent members of matched index nodes are
//! free, data nodes touched during validation are charged. We realize the
//! model by counting distinct `(automaton state, graph node)` activations —
//! for a linear path query each graph node is charged at most once per query
//! position, which reduces to the intuitive "nodes touched" count.
//!
//! Evaluation is *partial-match* (paper §3): a label path may start at any
//! node, so the automaton is seeded at every node whose label a first
//! transition can consume. Seeding uses a per-graph [`LabelIndex`] (label →
//! nodes) built once per graph, so a query for `director.movie.title` starts
//! only from `director` nodes, never scanning unrelated labels — matching how
//! the A(k) experiments obtain small costs for small indexes.

use crate::nfa::{Nfa, StateId, Step};
use dkindex_graph::{LabeledGraph, Marks, NodeId};
use dkindex_telemetry as telemetry;

/// Label → nodes inverted index for one graph. Build once per graph (its
/// construction is not charged to any query).
#[derive(Clone, Debug)]
pub struct LabelIndex {
    by_label: Vec<Vec<NodeId>>,
}

impl LabelIndex {
    /// Build the inverted index for `g` in O(n).
    pub fn build<G: LabeledGraph>(g: &G) -> Self {
        let mut by_label = vec![Vec::new(); g.labels().len()];
        for node in g.node_ids() {
            by_label[g.label_of(node).index()].push(node);
        }
        LabelIndex { by_label }
    }

    /// Nodes carrying `label`.
    #[inline]
    pub fn nodes_with(&self, label: dkindex_graph::LabelId) -> &[NodeId] {
        &self.by_label[label.index()]
    }

    /// All nodes, flattened (used to seed wildcard-initial queries).
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.by_label.iter().flatten().copied()
    }
}

/// Outcome of a forward evaluation: the matched nodes and the visit count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Nodes matched by the expression, in ascending id order.
    pub matches: Vec<NodeId>,
    /// Number of `(state, node)` activations — the paper's "nodes visited".
    pub visited: u64,
}

/// Reusable scratch state for [`evaluate_with`] and
/// [`matches_ending_at_with`]: epoch-stamped `(state, node)` activation
/// marks, the matched set, the product-BFS queue, and the start-closure
/// buffer. After warm-up, a batch of queries sharing one arena performs zero
/// steady-state allocation.
#[derive(Clone, Debug, Default)]
pub struct EvalArena {
    active: Marks,
    matched: Marks,
    matched_list: Vec<NodeId>,
    queue: Vec<(StateId, NodeId)>,
}

impl EvalArena {
    /// Fresh, empty arena. Buffers grow on first use and are reused after.
    pub fn new() -> Self {
        EvalArena::default()
    }
}

/// Evaluate `nfa` over `g` with partial-match semantics.
///
/// `label_index` must have been built from the same graph. Allocates scratch
/// per call; batches should prefer [`evaluate_with`] and a shared arena.
pub fn evaluate<G: LabeledGraph>(g: &G, nfa: &Nfa, label_index: &LabelIndex) -> EvalOutcome {
    evaluate_with(g, nfa, label_index, &mut EvalArena::new())
}

/// [`evaluate`] with caller-owned scratch: identical matches and visit
/// counts, no steady-state allocation across a batch of queries.
pub fn evaluate_with<G: LabeledGraph>(
    g: &G,
    nfa: &Nfa,
    label_index: &LabelIndex,
    arena: &mut EvalArena,
) -> EvalOutcome {
    let states = nfa.state_count();
    let nodes = g.node_count();

    // active slot s * nodes + n: pair (s, n) already activated. `s` here is
    // the post-consumption state *before* ε-closure; dedup on that pair
    // bounds the work per node by the number of consuming transitions.
    let EvalArena {
        active,
        matched,
        matched_list,
        queue,
        ..
    } = arena;
    active.reset(states * nodes);
    matched.reset(nodes);
    matched_list.clear();
    queue.clear();
    let mut visited: u64 = 0;

    let activate = |state: StateId,
                        node: NodeId,
                        active: &mut Marks,
                        matched: &mut Marks,
                        matched_list: &mut Vec<NodeId>,
                        queue: &mut Vec<(StateId, NodeId)>,
                        visited: &mut u64| {
        if !active.mark(state.index() * nodes + node.index()) {
            return;
        }
        *visited += 1;
        if nfa.is_accepting(state) && matched.mark(node.index()) {
            matched_list.push(node);
        }
        queue.push((state, node));
    };

    // Seed: consuming transitions reachable from the ε-closure of start.
    // `closure_steps_of(start)` is that closure's transitions precomputed in
    // ascending-state order — the same sequence the baseline's boolean-set
    // scan visits.
    for &(step, target) in nfa.closure_steps_of(nfa.start()) {
        match step {
            Step::Label(l) => {
                for &n in label_index.nodes_with(l) {
                    activate(target, n, active, matched, matched_list, queue, &mut visited);
                }
            }
            Step::Any => {
                for n in label_index.all_nodes() {
                    activate(target, n, active, matched, matched_list, queue, &mut visited);
                }
            }
        }
    }

    // Product BFS: from (q, n), extend the node path by one child. The
    // flattened closure-steps slice yields the same (step, target) sequence
    // as the nested closure × steps loop, so activation order — and with it
    // the visit count — is unchanged.
    let mut head = 0;
    while head < queue.len() {
        let (state, node) = queue[head];
        head += 1;
        let children = g.children_of(node);
        for &(step, target) in nfa.closure_steps_of(state) {
            for &child in children {
                if step.matches(g.label_of(child)) {
                    activate(
                        target,
                        child,
                        active,
                        matched,
                        matched_list,
                        queue,
                        &mut visited,
                    );
                }
            }
        }
    }

    telemetry::metrics::PATHEXPR_EVALUATIONS.incr();
    telemetry::metrics::PATHEXPR_ACTIVATIONS.add(visited);
    telemetry::metrics::PATHEXPR_VISITS_PER_EVAL.record(visited);

    let mut matches = std::mem::take(matched_list);
    matches.sort_unstable();
    EvalOutcome { matches, visited }
}

/// Does some node path ending at `node` match a word of `nfa`'s language?
/// Used by the validation process: `reversed` must be `nfa.reverse()`.
///
/// Walks backward along parent edges, consuming labels in reverse, and stops
/// at the first witness. Returns the verdict and the number of
/// `(state, node)` activations performed (charged as data-graph visits).
pub fn matches_ending_at<G: LabeledGraph>(g: &G, reversed: &Nfa, node: NodeId) -> (bool, u64) {
    matches_ending_at_with(g, reversed, node, &mut EvalArena::new())
}

/// [`matches_ending_at`] with caller-owned scratch: identical verdicts and
/// visit counts, no steady-state allocation across a batch of candidates.
pub fn matches_ending_at_with<G: LabeledGraph>(
    g: &G,
    reversed: &Nfa,
    node: NodeId,
    arena: &mut EvalArena,
) -> (bool, u64) {
    // Aggregate recording at every exit; the walk itself is untouched.
    fn finish(hit: bool, visited: u64) -> (bool, u64) {
        telemetry::metrics::PATHEXPR_VALIDATION_WALKS.incr();
        telemetry::metrics::PATHEXPR_VALIDATION_ACTIVATIONS.add(visited);
        (hit, visited)
    }

    let states = reversed.state_count();
    let nodes = g.node_count();

    let EvalArena { active, queue, .. } = arena;
    active.reset(states * nodes);
    queue.clear();
    let mut visited: u64 = 0;

    // Seed: consume `node`'s own label from the reversed start, using the
    // precomputed start-closure transitions (same sequence the baseline's
    // boolean-set scan visits).
    let node_label = g.label_of(node);
    for &(step, target) in reversed.closure_steps_of(reversed.start()) {
        if step.matches(node_label) && active.mark(target.index() * nodes + node.index()) {
            visited += 1;
            if reversed.is_accepting(target) {
                return finish(true, visited);
            }
            queue.push((target, node));
        }
    }

    let mut head = 0;
    while head < queue.len() {
        let (state, n) = queue[head];
        head += 1;
        let parents = g.parents_of(n);
        for &(step, target) in reversed.closure_steps_of(state) {
            for &parent in parents {
                if step.matches(g.label_of(parent))
                    && active.mark(target.index() * nodes + parent.index())
                {
                    visited += 1;
                    if reversed.is_accepting(target) {
                        return finish(true, visited);
                    }
                    queue.push((target, parent));
                }
            }
        }
    }
    finish(false, visited)
}

/// A cap on `(state, node)` activations shared across the phases of one
/// query execution — the robustness layer's defence against runaway queries
/// (adversarial star expressions over dense cyclic graphs).
///
/// One budget is threaded through the index-graph evaluation *and* every
/// validation walk of a query, so the cap bounds the query's total work, not
/// each phase separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VisitBudget {
    remaining: u64,
}

impl VisitBudget {
    /// A budget allowing `limit` activations.
    pub fn new(limit: u64) -> Self {
        VisitBudget { remaining: limit }
    }

    /// A budget that never exhausts (bounded evaluation then behaves
    /// identically to the unbounded evaluators).
    pub fn unlimited() -> Self {
        VisitBudget { remaining: u64::MAX }
    }

    /// Activations still allowed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Charge one activation; `false` means the budget is exhausted.
    #[inline]
    pub fn try_charge(&mut self) -> bool {
        self.try_charge_many(1)
    }

    /// Charge `n` activations at once (used when replaying memoized
    /// validation verdicts, which charge their stored visit count); `false`
    /// means the budget cannot cover them.
    #[inline]
    pub fn try_charge_many(&mut self, n: u64) -> bool {
        if self.remaining < n {
            return false;
        }
        self.remaining -= n;
        true
    }
}

/// Typed abort: the visit budget ran out mid-evaluation.
///
/// Partial results are discarded by design — a truncated match set would be
/// silently wrong, which is exactly what the robustness layer exists to
/// prevent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Activations performed before the abort (the full budget).
    pub visited: u64,
}

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "visit budget exhausted after {} activations", self.visited)
    }
}

impl std::error::Error for BudgetExhausted {}

/// [`evaluate_with`] under a [`VisitBudget`]: identical matches and visit
/// counts while the budget holds, a typed [`BudgetExhausted`] once it
/// doesn't. The budget is `&mut` so validation walks can share it.
pub fn evaluate_bounded_with<G: LabeledGraph>(
    g: &G,
    nfa: &Nfa,
    label_index: &LabelIndex,
    arena: &mut EvalArena,
    budget: &mut VisitBudget,
) -> Result<EvalOutcome, BudgetExhausted> {
    let states = nfa.state_count();
    let nodes = g.node_count();

    let EvalArena {
        active,
        matched,
        matched_list,
        queue,
        ..
    } = arena;
    active.reset(states * nodes);
    matched.reset(nodes);
    matched_list.clear();
    queue.clear();
    let mut visited: u64 = 0;

    // Same activation discipline as `evaluate_with`, plus the budget charge.
    // Returns false exactly when the budget ran out.
    let activate = |state: StateId,
                        node: NodeId,
                        active: &mut Marks,
                        matched: &mut Marks,
                        matched_list: &mut Vec<NodeId>,
                        queue: &mut Vec<(StateId, NodeId)>,
                        visited: &mut u64,
                        budget: &mut VisitBudget|
     -> bool {
        if !active.mark(state.index() * nodes + node.index()) {
            return true;
        }
        if !budget.try_charge() {
            return false;
        }
        *visited += 1;
        if nfa.is_accepting(state) && matched.mark(node.index()) {
            matched_list.push(node);
        }
        queue.push((state, node));
        true
    };

    for &(step, target) in nfa.closure_steps_of(nfa.start()) {
        match step {
            Step::Label(l) => {
                for &n in label_index.nodes_with(l) {
                    if !activate(target, n, active, matched, matched_list, queue, &mut visited, budget) {
                        return Err(BudgetExhausted { visited });
                    }
                }
            }
            Step::Any => {
                for n in label_index.all_nodes() {
                    if !activate(target, n, active, matched, matched_list, queue, &mut visited, budget) {
                        return Err(BudgetExhausted { visited });
                    }
                }
            }
        }
    }

    let mut head = 0;
    while head < queue.len() {
        let (state, node) = queue[head];
        head += 1;
        let children = g.children_of(node);
        for &(step, target) in nfa.closure_steps_of(state) {
            for &child in children {
                if step.matches(g.label_of(child))
                    && !activate(target, child, active, matched, matched_list, queue, &mut visited, budget)
                {
                    return Err(BudgetExhausted { visited });
                }
            }
        }
    }

    telemetry::metrics::PATHEXPR_EVALUATIONS.incr();
    telemetry::metrics::PATHEXPR_ACTIVATIONS.add(visited);
    telemetry::metrics::PATHEXPR_VISITS_PER_EVAL.record(visited);

    let mut matches = std::mem::take(matched_list);
    matches.sort_unstable();
    Ok(EvalOutcome { matches, visited })
}

/// [`matches_ending_at_with`] under a [`VisitBudget`]: identical verdicts
/// and visit counts while the budget holds, [`BudgetExhausted`] once it
/// doesn't.
pub fn matches_ending_at_bounded_with<G: LabeledGraph>(
    g: &G,
    reversed: &Nfa,
    node: NodeId,
    arena: &mut EvalArena,
    budget: &mut VisitBudget,
) -> Result<(bool, u64), BudgetExhausted> {
    fn finish(hit: bool, visited: u64) -> Result<(bool, u64), BudgetExhausted> {
        telemetry::metrics::PATHEXPR_VALIDATION_WALKS.incr();
        telemetry::metrics::PATHEXPR_VALIDATION_ACTIVATIONS.add(visited);
        Ok((hit, visited))
    }

    let states = reversed.state_count();
    let nodes = g.node_count();

    let EvalArena { active, queue, .. } = arena;
    active.reset(states * nodes);
    queue.clear();
    let mut visited: u64 = 0;

    let node_label = g.label_of(node);
    for &(step, target) in reversed.closure_steps_of(reversed.start()) {
        if step.matches(node_label) && active.mark(target.index() * nodes + node.index()) {
            if !budget.try_charge() {
                return Err(BudgetExhausted { visited });
            }
            visited += 1;
            if reversed.is_accepting(target) {
                return finish(true, visited);
            }
            queue.push((target, node));
        }
    }

    let mut head = 0;
    while head < queue.len() {
        let (state, n) = queue[head];
        head += 1;
        let parents = g.parents_of(n);
        for &(step, target) in reversed.closure_steps_of(state) {
            for &parent in parents {
                if step.matches(g.label_of(parent))
                    && active.mark(target.index() * nodes + parent.index())
                {
                    if !budget.try_charge() {
                        return Err(BudgetExhausted { visited });
                    }
                    visited += 1;
                    if reversed.is_accepting(target) {
                        return finish(true, visited);
                    }
                    queue.push((target, parent));
                }
            }
        }
    }
    finish(false, visited)
}

/// The pre-arena reference implementation of [`evaluate`]: allocates fresh
/// scratch per call. Kept for the equivalence property tests and the
/// before/after benchmark comparison; behaviour (matches *and* visit counts)
/// must stay byte-identical to [`evaluate_with`].
pub fn evaluate_baseline<G: LabeledGraph>(
    g: &G,
    nfa: &Nfa,
    label_index: &LabelIndex,
) -> EvalOutcome {
    let states = nfa.state_count();
    let nodes = g.node_count();
    let closures = nfa.closures();

    let mut active = vec![false; states * nodes];
    let mut matched = vec![false; nodes];
    let mut visited: u64 = 0;
    let mut queue: Vec<(StateId, NodeId)> = Vec::new();

    let accept = nfa.accept();
    let activate = |state: StateId,
                        node: NodeId,
                        active: &mut Vec<bool>,
                        matched: &mut Vec<bool>,
                        queue: &mut Vec<(StateId, NodeId)>,
                        visited: &mut u64| {
        let slot = state.index() * nodes + node.index();
        if active[slot] {
            return;
        }
        active[slot] = true;
        *visited += 1;
        if closures[state.index()].contains(&accept) {
            matched[node.index()] = true;
        }
        queue.push((state, node));
    };

    let mut start_set = vec![false; states];
    start_set[nfa.start().index()] = true;
    nfa.eps_close(&mut start_set);
    for (s, &on) in start_set.iter().enumerate() {
        if !on {
            continue;
        }
        for &(step, target) in nfa.steps_of(StateId::from_index(s)) {
            match step {
                Step::Label(l) => {
                    for &n in label_index.nodes_with(l) {
                        activate(target, n, &mut active, &mut matched, &mut queue, &mut visited);
                    }
                }
                Step::Any => {
                    for n in label_index.all_nodes() {
                        activate(target, n, &mut active, &mut matched, &mut queue, &mut visited);
                    }
                }
            }
        }
    }

    let mut head = 0;
    while head < queue.len() {
        let (state, node) = queue[head];
        head += 1;
        for &q in &closures[state.index()] {
            for &(step, target) in nfa.steps_of(q) {
                for &child in g.children_of(node) {
                    if step.matches(g.label_of(child)) {
                        activate(
                            target,
                            child,
                            &mut active,
                            &mut matched,
                            &mut queue,
                            &mut visited,
                        );
                    }
                }
            }
        }
    }

    let matches = matched
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    EvalOutcome { matches, visited }
}

/// The pre-arena reference implementation of [`matches_ending_at`]
/// (`HashSet`-based dedup, fresh allocations per call). Kept for equivalence
/// tests and the before/after benchmark comparison.
pub fn matches_ending_at_baseline<G: LabeledGraph>(
    g: &G,
    reversed: &Nfa,
    node: NodeId,
) -> (bool, u64) {
    let states = reversed.state_count();
    let closures = reversed.closures();
    let accept = reversed.accept();

    let mut active: std::collections::HashSet<(StateId, NodeId)> = std::collections::HashSet::new();
    let mut queue: Vec<(StateId, NodeId)> = Vec::new();
    let mut visited: u64 = 0;

    let mut start_set = vec![false; states];
    start_set[reversed.start().index()] = true;
    reversed.eps_close(&mut start_set);
    let node_label = g.label_of(node);
    for (s, &on) in start_set.iter().enumerate() {
        if !on {
            continue;
        }
        for &(step, target) in reversed.steps_of(StateId::from_index(s)) {
            if step.matches(node_label) && active.insert((target, node)) {
                visited += 1;
                if closures[target.index()].contains(&accept) {
                    return (true, visited);
                }
                queue.push((target, node));
            }
        }
    }

    let mut head = 0;
    while head < queue.len() {
        let (state, n) = queue[head];
        head += 1;
        for &q in &closures[state.index()] {
            for &(step, target) in reversed.steps_of(q) {
                for &parent in g.parents_of(n) {
                    if step.matches(g.label_of(parent)) && active.insert((target, parent)) {
                        visited += 1;
                        if closures[target.index()].contains(&accept) {
                            return (true, visited);
                        }
                        queue.push((target, parent));
                    }
                }
            }
        }
    }
    (false, visited)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use dkindex_graph::{DataGraph, EdgeKind};

    /// ROOT -> director -> movie -> title
    ///      -> actor    -> movie(2) -> title(2)
    ///      director -ref-> movie(2)
    fn movie_graph() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let director = g.add_labeled_node("director");
        let m1 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let actor = g.add_labeled_node("actor");
        let m2 = g.add_labeled_node("movie");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, director, EdgeKind::Tree);
        g.add_edge(director, m1, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(r, actor, EdgeKind::Tree);
        g.add_edge(actor, m2, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g.add_edge(director, m2, EdgeKind::Reference);
        (g, vec![director, m1, t1, actor, m2, t2])
    }

    fn eval(g: &DataGraph, expr: &str) -> EvalOutcome {
        let e = parse(expr).unwrap();
        let nfa = Nfa::compile(&e, g.labels());
        let idx = LabelIndex::build(g);
        evaluate(g, &nfa, &idx)
    }

    #[test]
    fn linear_query_finds_both_titles() {
        let (g, n) = movie_graph();
        let out = eval(&g, "movie.title");
        assert_eq!(out.matches, vec![n[2], n[5]]);
    }

    #[test]
    fn longer_query_distinguishes_provenance() {
        let (g, n) = movie_graph();
        // Both titles are reachable via director (m2 through the reference).
        let out = eval(&g, "director.movie.title");
        assert_eq!(out.matches, vec![n[2], n[5]]);
        let out = eval(&g, "actor.movie.title");
        assert_eq!(out.matches, vec![n[5]]);
    }

    #[test]
    fn wildcard_and_optional() {
        let (g, n) = movie_graph();
        let out = eval(&g, "ROOT._.movie");
        assert_eq!(out.matches, vec![n[1], n[4]]);
        // Optional hop: ROOT.(_)?.director finds director whether or not an
        // intermediate exists.
        let out = eval(&g, "ROOT.(_)?.director");
        assert_eq!(out.matches, vec![n[0]]);
    }

    #[test]
    fn star_query_over_cycle_terminates() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(b, a, EdgeKind::Reference);
        let out = eval(&g, "a.(b.a)*");
        // All `a` reachable (only one a node, matched at both lengths).
        assert_eq!(out.matches, vec![a]);
        let out2 = eval(&g, "a.b");
        assert_eq!(out2.matches, vec![b]);
    }

    #[test]
    fn no_match_costs_little() {
        let (g, _) = movie_graph();
        let out = eval(&g, "ghost.label");
        assert!(out.matches.is_empty());
        assert_eq!(out.visited, 0);
    }

    #[test]
    fn cost_counts_seeded_and_expanded_nodes() {
        let (g, _) = movie_graph();
        let out = eval(&g, "movie.title");
        // Seeds: 2 movie nodes. Expansion: 2 titles. No revisits.
        assert_eq!(out.visited, 4);
    }

    #[test]
    fn partial_match_seeds_anywhere() {
        let (g, n) = movie_graph();
        let out = eval(&g, "title");
        assert_eq!(out.matches, vec![n[2], n[5]]);
        assert_eq!(out.visited, 2);
    }

    #[test]
    fn matches_ending_at_agrees_with_forward_eval() {
        let (g, _) = movie_graph();
        for expr in [
            "movie.title",
            "director.movie.title",
            "actor.movie.title",
            "ROOT._.movie",
            "a.(b|c)",
            "director.movie",
            "_._.title",
        ] {
            let e = parse(expr).unwrap();
            let nfa = Nfa::compile(&e, g.labels());
            let rev = nfa.reverse();
            let idx = LabelIndex::build(&g);
            let forward = evaluate(&g, &nfa, &idx);
            for node in g.node_ids() {
                let (hit, _) = matches_ending_at(&g, &rev, node);
                assert_eq!(
                    hit,
                    forward.matches.contains(&node),
                    "expr {expr} node {node:?}"
                );
            }
        }
    }

    #[test]
    fn matches_ending_at_on_cycles_terminates() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, a, EdgeKind::Reference); // self loop
        let e = parse("a.a.a.a").unwrap();
        let nfa = Nfa::compile(&e, g.labels());
        let rev = nfa.reverse();
        let (hit, _) = matches_ending_at(&g, &rev, a);
        assert!(hit); // a -> a -> a -> a through the self loop
    }

    #[test]
    fn arena_reuse_is_byte_identical_to_baseline() {
        let (g, _) = movie_graph();
        let idx = LabelIndex::build(&g);
        let mut arena = EvalArena::new();
        // One arena across queries of very different state/node footprints.
        for expr in [
            "movie.title",
            "director.movie.title",
            "_._.title",
            "ghost.label",
            "ROOT.(_)?.director",
            "a.(b|c)",
            "movie.title", // repeat after the arena has been stretched
            "title",
        ] {
            let e = parse(expr).unwrap();
            let nfa = Nfa::compile(&e, g.labels());
            let base = evaluate_baseline(&g, &nfa, &idx);
            let fast = evaluate_with(&g, &nfa, &idx, &mut arena);
            assert_eq!(base, fast, "expr {expr}");

            let rev = nfa.reverse();
            for node in g.node_ids() {
                assert_eq!(
                    matches_ending_at_baseline(&g, &rev, node),
                    matches_ending_at_with(&g, &rev, node, &mut arena),
                    "expr {expr} node {node:?}"
                );
            }
        }
    }

    #[test]
    fn bounded_eval_with_ample_budget_is_identical() {
        let (g, _) = movie_graph();
        let idx = LabelIndex::build(&g);
        let mut arena = EvalArena::new();
        for expr in ["movie.title", "director.movie.title", "_._.title", "title"] {
            let e = parse(expr).unwrap();
            let nfa = Nfa::compile(&e, g.labels());
            let free = evaluate_with(&g, &nfa, &idx, &mut arena);
            let mut budget = VisitBudget::unlimited();
            let bounded = evaluate_bounded_with(&g, &nfa, &idx, &mut arena, &mut budget)
                .expect("unlimited budget never aborts");
            assert_eq!(free, bounded, "expr {expr}");

            let rev = nfa.reverse();
            for node in g.node_ids() {
                let plain = matches_ending_at_with(&g, &rev, node, &mut arena);
                let mut budget = VisitBudget::unlimited();
                let bounded =
                    matches_ending_at_bounded_with(&g, &rev, node, &mut arena, &mut budget)
                        .expect("unlimited budget never aborts");
                assert_eq!(plain, bounded, "expr {expr} node {node:?}");
            }
        }
    }

    #[test]
    fn bounded_eval_aborts_at_every_budget_below_cost() {
        let (g, _) = movie_graph();
        let idx = LabelIndex::build(&g);
        let mut arena = EvalArena::new();
        let e = parse("director.movie.title").unwrap();
        let nfa = Nfa::compile(&e, g.labels());
        let full = evaluate_with(&g, &nfa, &idx, &mut arena);
        assert!(full.visited > 0);
        for limit in 0..full.visited {
            let mut budget = VisitBudget::new(limit);
            let err = evaluate_bounded_with(&g, &nfa, &idx, &mut arena, &mut budget)
                .expect_err("budget below the query's cost must abort");
            assert_eq!(err.visited, limit, "abort charges exactly the budget");
            assert_eq!(budget.remaining(), 0);
        }
        // Exactly the query's cost suffices.
        let mut budget = VisitBudget::new(full.visited);
        let out = evaluate_bounded_with(&g, &nfa, &idx, &mut arena, &mut budget).unwrap();
        assert_eq!(out, full);
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn bounded_backward_walk_aborts_with_tiny_budget() {
        let (g, n) = movie_graph();
        let e = parse("director.movie.title").unwrap();
        let nfa = Nfa::compile(&e, g.labels());
        let rev = nfa.reverse();
        let mut arena = EvalArena::new();
        let (hit, visited) = matches_ending_at_with(&g, &rev, n[2], &mut arena);
        assert!(hit);
        assert!(visited > 0);
        let mut budget = VisitBudget::new(visited - 1);
        matches_ending_at_bounded_with(&g, &rev, n[2], &mut arena, &mut budget)
            .expect_err("insufficient budget must abort");
    }

    #[test]
    fn label_index_lists_nodes_per_label() {
        let (g, _) = movie_graph();
        let idx = LabelIndex::build(&g);
        let movie = g.labels().get("movie").unwrap();
        assert_eq!(idx.nodes_with(movie).len(), 2);
        assert_eq!(idx.all_nodes().count(), g.node_count());
    }
}
