//! # dkindex-pathexpr
//!
//! Regular path expressions over labeled graphs (paper §3), the query side of
//! the D(k)-index reproduction:
//!
//! * [`PathExpr`] — AST for `R = label | _ | R.R | R|R | (R) | R? | R*`,
//!   with word-length analysis used by the soundness test and query-load
//!   mining.
//! * [`parse()`](crate::parse::parse) — text syntax, e.g. `movieDB.(_)?.movie.actor.name`.
//! * [`Nfa`] — Thompson compilation against a label interner, reversible for
//!   backward validation walks.
//! * [`evaluate`] / [`matches_ending_at`] — partial-match evaluation over any
//!   [`dkindex_graph::LabeledGraph`] with the paper's node-visit cost model.
//! * [`EvalArena`] + [`evaluate_with`] / [`matches_ending_at_with`] —
//!   allocation-free batch evaluation with reusable epoch-stamped scratch.
//!
//! ## Example
//!
//! ```
//! use dkindex_graph::{DataGraph, EdgeKind, LabeledGraph};
//! use dkindex_pathexpr::{evaluate, parse, LabelIndex, Nfa};
//!
//! let mut g = DataGraph::new();
//! let movie = g.add_labeled_node("movie");
//! let title = g.add_labeled_node("title");
//! let root = g.root();
//! g.add_edge(root, movie, EdgeKind::Tree);
//! g.add_edge(movie, title, EdgeKind::Tree);
//!
//! let expr = parse("movie.title").unwrap();
//! let nfa = Nfa::compile(&expr, g.labels());
//! let idx = LabelIndex::build(&g);
//! let out = evaluate(&g, &nfa, &idx);
//! assert_eq!(out.matches, vec![title]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod nfa;
pub mod parse;
pub mod twig;

pub use ast::{LastLabels, PathExpr};
pub use eval::{
    evaluate, evaluate_baseline, evaluate_bounded_with, evaluate_with, matches_ending_at,
    matches_ending_at_baseline, matches_ending_at_bounded_with, matches_ending_at_with,
    BudgetExhausted, EvalArena, EvalOutcome, LabelIndex, VisitBudget,
};
pub use nfa::{Nfa, StateId, Step};
pub use parse::{parse, ParseError};
pub use twig::{evaluate_twig, parse_twig, Twig, TwigStep};
