//! Thompson NFA compilation of path expressions.
//!
//! The automaton alphabet is the [`LabelId`] space of one specific
//! [`dkindex_graph::LabelInterner`]: compilation resolves label names against
//! an interner, and names the interner has never seen produce transitions
//! that can match nothing (the query can still succeed through other
//! branches). A compiled NFA can be [reversed](Nfa::reverse) for the backward
//! walks used by the validation process.

use crate::ast::PathExpr;
use dkindex_graph::{LabelId, LabelInterner};

/// State index within an [`Nfa`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Numeric index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a `StateId` from an index previously obtained through
    /// [`StateId::index`]. The caller must keep it in range for the NFA it
    /// is used with.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        StateId(index as u32)
    }
}

/// A consuming transition: matches one node label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// Match exactly this label.
    Label(LabelId),
    /// Match any label (the wildcard `_`).
    Any,
}

impl Step {
    /// Does this transition accept `label`?
    #[inline]
    pub fn matches(self, label: LabelId) -> bool {
        match self {
            Step::Label(l) => l == label,
            Step::Any => true,
        }
    }
}

/// A non-deterministic finite automaton over labels with ε-transitions,
/// a single start state and a single accept state.
#[derive(Clone, Debug)]
pub struct Nfa {
    eps: Vec<Vec<StateId>>,
    steps: Vec<Vec<(Step, StateId)>>,
    start: StateId,
    accept: StateId,
    // Precomputed at construction so the evaluation hot loops never allocate:
    // per-state ε-closures, whether each state's closure contains accept, and
    // each closure's consuming transitions flattened in closure order.
    closures: Vec<Vec<StateId>>,
    accepting: Vec<bool>,
    closure_steps: Vec<Vec<(Step, StateId)>>,
}

struct Fragment {
    start: StateId,
    accept: StateId,
}

struct Builder {
    eps: Vec<Vec<StateId>>,
    steps: Vec<Vec<(Step, StateId)>>,
}

impl Builder {
    fn state(&mut self) -> StateId {
        let id = StateId(self.eps.len() as u32);
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        id
    }

    fn eps(&mut self, from: StateId, to: StateId) {
        self.eps[from.index()].push(to);
    }

    fn step(&mut self, from: StateId, step: Step, to: StateId) {
        self.steps[from.index()].push((step, to));
    }

    fn fragment(&mut self, expr: &PathExpr, labels: &LabelInterner) -> Fragment {
        match expr {
            PathExpr::Label(name) => {
                let start = self.state();
                let accept = self.state();
                // Unknown labels simply get no transition: the fragment's
                // language restricted to this alphabet is empty.
                if let Some(id) = labels.get(name) {
                    self.step(start, Step::Label(id), accept);
                }
                Fragment { start, accept }
            }
            PathExpr::Wildcard => {
                let start = self.state();
                let accept = self.state();
                self.step(start, Step::Any, accept);
                Fragment { start, accept }
            }
            PathExpr::Seq(a, b) => {
                let fa = self.fragment(a, labels);
                let fb = self.fragment(b, labels);
                self.eps(fa.accept, fb.start);
                Fragment {
                    start: fa.start,
                    accept: fb.accept,
                }
            }
            PathExpr::Alt(a, b) => {
                let fa = self.fragment(a, labels);
                let fb = self.fragment(b, labels);
                let start = self.state();
                let accept = self.state();
                self.eps(start, fa.start);
                self.eps(start, fb.start);
                self.eps(fa.accept, accept);
                self.eps(fb.accept, accept);
                Fragment { start, accept }
            }
            PathExpr::Opt(a) => {
                let fa = self.fragment(a, labels);
                let start = self.state();
                let accept = self.state();
                self.eps(start, fa.start);
                self.eps(start, accept);
                self.eps(fa.accept, accept);
                Fragment { start, accept }
            }
            PathExpr::Star(a) => {
                let fa = self.fragment(a, labels);
                let start = self.state();
                let accept = self.state();
                self.eps(start, fa.start);
                self.eps(start, accept);
                self.eps(fa.accept, fa.start);
                self.eps(fa.accept, accept);
                Fragment { start, accept }
            }
        }
    }
}

impl Nfa {
    /// Compile `expr` against the label alphabet of `labels`.
    pub fn compile(expr: &PathExpr, labels: &LabelInterner) -> Nfa {
        let mut b = Builder {
            eps: Vec::new(),
            steps: Vec::new(),
        };
        let frag = b.fragment(expr, labels);
        Nfa::from_parts(b.eps, b.steps, frag.start, frag.accept)
    }

    fn from_parts(
        eps: Vec<Vec<StateId>>,
        steps: Vec<Vec<(Step, StateId)>>,
        start: StateId,
        accept: StateId,
    ) -> Nfa {
        let n = eps.len();
        let closures: Vec<Vec<StateId>> = (0..n)
            .map(|s| {
                let mut set = vec![false; n];
                set[s] = true;
                let mut stack = vec![StateId(s as u32)];
                while let Some(q) = stack.pop() {
                    for &t in &eps[q.index()] {
                        if !set[t.index()] {
                            set[t.index()] = true;
                            stack.push(t);
                        }
                    }
                }
                set.iter()
                    .enumerate()
                    .filter(|&(_, &on)| on)
                    .map(|(i, _)| StateId(i as u32))
                    .collect()
            })
            .collect();
        let accepting = closures.iter().map(|c| c.contains(&accept)).collect();
        let closure_steps = closures
            .iter()
            .map(|closure| {
                closure
                    .iter()
                    .flat_map(|&q| steps[q.index()].iter().copied())
                    .collect()
            })
            .collect();
        Nfa {
            eps,
            steps,
            start,
            accept,
            closures,
            accepting,
            closure_steps,
        }
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.eps.len()
    }

    /// The start state.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The accept state.
    #[inline]
    pub fn accept(&self) -> StateId {
        self.accept
    }

    /// ε-successors of `state`.
    #[inline]
    pub fn eps_of(&self, state: StateId) -> &[StateId] {
        &self.eps[state.index()]
    }

    /// Consuming transitions out of `state`.
    #[inline]
    pub fn steps_of(&self, state: StateId) -> &[(Step, StateId)] {
        &self.steps[state.index()]
    }

    /// The automaton recognizing the reversed language: every transition is
    /// flipped, start and accept swap roles. Used by the validation process,
    /// which walks *backward* from a candidate data node along parent edges.
    pub fn reverse(&self) -> Nfa {
        let n = self.state_count();
        let mut eps = vec![Vec::new(); n];
        let mut steps = vec![Vec::new(); n];
        for s in 0..n {
            for &t in &self.eps[s] {
                eps[t.index()].push(StateId(s as u32));
            }
            for &(step, t) in &self.steps[s] {
                steps[t.index()].push((step, StateId(s as u32)));
            }
        }
        Nfa::from_parts(eps, steps, self.accept, self.start)
    }

    /// Expand `set` (a boolean per state) to its ε-closure in place.
    pub fn eps_close(&self, set: &mut [bool]) {
        debug_assert_eq!(set.len(), self.state_count());
        let mut stack: Vec<StateId> = set
            .iter()
            .enumerate()
            .filter(|&(_, &on)| on)
            .map(|(i, _)| StateId(i as u32))
            .collect();
        while let Some(s) = stack.pop() {
            for &t in self.eps_of(s) {
                if !set[t.index()] {
                    set[t.index()] = true;
                    stack.push(t);
                }
            }
        }
    }

    /// Per-state ε-closures (each row is the closure of the singleton
    /// `{state}`), precomputed at construction so evaluation never recomputes
    /// or allocates them.
    #[inline]
    pub fn closures(&self) -> &[Vec<StateId>] {
        &self.closures
    }

    /// Does `state`'s ε-closure contain the accept state? Precomputed so the
    /// evaluation hot loop checks acceptance in O(1).
    #[inline]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state.index()]
    }

    /// Consuming transitions of every state in `state`'s ε-closure, flattened
    /// in closure order — exactly the pairs the nested
    /// `closures()[s] × steps_of(q)` loop yields, in the same order, so hot
    /// loops can use one contiguous slice without changing activation order
    /// (and therefore without changing visit counts).
    #[inline]
    pub fn closure_steps_of(&self, state: StateId) -> &[(Step, StateId)] {
        &self.closure_steps[state.index()]
    }

    /// Does the automaton accept the given word (sequence of labels)?
    /// Linear-time subset simulation; used by tests and the workload miner.
    pub fn accepts(&self, word: &[LabelId]) -> bool {
        let mut cur = vec![false; self.state_count()];
        cur[self.start.index()] = true;
        self.eps_close(&mut cur);
        for &label in word {
            let mut next = vec![false; self.state_count()];
            for (s, &on) in cur.iter().enumerate() {
                if !on {
                    continue;
                }
                for &(step, t) in self.steps_of(StateId(s as u32)) {
                    if step.matches(label) {
                        next[t.index()] = true;
                    }
                }
            }
            self.eps_close(&mut next);
            cur = next;
            if !cur.iter().any(|&on| on) {
                return false;
            }
        }
        cur[self.accept.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn interner_with(labels: &[&str]) -> LabelInterner {
        let mut i = LabelInterner::new();
        for l in labels {
            i.intern(l);
        }
        i
    }

    fn ids(i: &LabelInterner, names: &[&str]) -> Vec<LabelId> {
        names.iter().map(|n| i.get(n).unwrap()).collect()
    }

    #[test]
    fn accepts_linear_path() {
        let i = interner_with(&["a", "b", "c"]);
        let nfa = Nfa::compile(&parse("a.b.c").unwrap(), &i);
        assert!(nfa.accepts(&ids(&i, &["a", "b", "c"])));
        assert!(!nfa.accepts(&ids(&i, &["a", "b"])));
        assert!(!nfa.accepts(&ids(&i, &["a", "c", "c"])));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn accepts_alternation() {
        let i = interner_with(&["a", "b", "c"]);
        let nfa = Nfa::compile(&parse("a.(b|c)").unwrap(), &i);
        assert!(nfa.accepts(&ids(&i, &["a", "b"])));
        assert!(nfa.accepts(&ids(&i, &["a", "c"])));
        assert!(!nfa.accepts(&ids(&i, &["b", "c"])));
    }

    #[test]
    fn accepts_optional_and_star() {
        let i = interner_with(&["a", "b"]);
        let opt = Nfa::compile(&parse("a.b?").unwrap(), &i);
        assert!(opt.accepts(&ids(&i, &["a"])));
        assert!(opt.accepts(&ids(&i, &["a", "b"])));
        assert!(!opt.accepts(&ids(&i, &["a", "b", "b"])));

        let star = Nfa::compile(&parse("a.b*").unwrap(), &i);
        assert!(star.accepts(&ids(&i, &["a"])));
        assert!(star.accepts(&ids(&i, &["a", "b", "b", "b"])));
        assert!(!star.accepts(&ids(&i, &["b"])));
    }

    #[test]
    fn wildcard_matches_anything() {
        let i = interner_with(&["a", "zzz"]);
        let nfa = Nfa::compile(&parse("a._").unwrap(), &i);
        assert!(nfa.accepts(&ids(&i, &["a", "zzz"])));
        assert!(nfa.accepts(&ids(&i, &["a", "a"])));
        assert!(!nfa.accepts(&ids(&i, &["a"])));
    }

    #[test]
    fn unknown_label_matches_nothing_but_alternatives_survive() {
        let i = interner_with(&["a"]);
        let dead = Nfa::compile(&parse("ghost").unwrap(), &i);
        assert!(!dead.accepts(&ids(&i, &["a"])));

        let alt = Nfa::compile(&parse("ghost|a").unwrap(), &i);
        assert!(alt.accepts(&ids(&i, &["a"])));
    }

    #[test]
    fn reverse_accepts_reversed_words() {
        let i = interner_with(&["a", "b", "c"]);
        let nfa = Nfa::compile(&parse("a.b.c").unwrap(), &i);
        let rev = nfa.reverse();
        assert!(rev.accepts(&ids(&i, &["c", "b", "a"])));
        assert!(!rev.accepts(&ids(&i, &["a", "b", "c"])));
    }

    #[test]
    fn reverse_of_reverse_is_equivalent() {
        let i = interner_with(&["a", "b"]);
        let nfa = Nfa::compile(&parse("a.b*|b").unwrap(), &i);
        let back = nfa.reverse().reverse();
        for word in [vec!["a"], vec!["a", "b"], vec!["b"], vec!["b", "b"], vec!["a", "a"]] {
            let w = ids(&i, &word);
            assert_eq!(nfa.accepts(&w), back.accepts(&w), "word {word:?}");
        }
    }

    #[test]
    fn closures_contain_self() {
        let i = interner_with(&["a"]);
        let nfa = Nfa::compile(&parse("a?*").unwrap(), &i);
        let closures = nfa.closures();
        for (s, closure) in closures.iter().enumerate() {
            assert!(closure.contains(&StateId(s as u32)));
        }
        // Start of `a?*` reaches accept by epsilons alone.
        assert!(closures[nfa.start().index()].contains(&nfa.accept()));
    }

    #[test]
    fn paper_expression_automaton() {
        let i = interner_with(&["movieDB", "movie", "actor", "name", "director"]);
        let nfa = Nfa::compile(&parse("movieDB.(_)?.movie.actor.name").unwrap(), &i);
        assert!(nfa.accepts(&ids(&i, &["movieDB", "movie", "actor", "name"])));
        assert!(nfa.accepts(&ids(&i, &["movieDB", "director", "movie", "actor", "name"])));
        assert!(!nfa.accepts(&ids(&i, &["movieDB", "actor", "name"])));
    }
}
