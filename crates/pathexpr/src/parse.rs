//! Parser for the paper's regular path expression grammar:
//!
//! ```text
//! expr   = seq ('|' seq)*
//! seq    = post ('.' post)*
//! post   = atom ('?' | '*')*
//! atom   = LABEL | '_' | '(' expr ')'
//! ```
//!
//! Labels are XML-name-like: a letter or `_`-free start character followed by
//! letters, digits, `-` and `:`. The bare `_` token is the wildcard.

use crate::ast::PathExpr;
use std::fmt;

/// Error produced when a path expression fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Label(String),
    Wildcard,
    Dot,
    Pipe,
    LParen,
    RParen,
    Question,
    Star,
}

fn lex(input: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '.' => {
                tokens.push((i, Token::Dot));
                i += 1;
            }
            '|' => {
                tokens.push((i, Token::Pipe));
                i += 1;
            }
            '(' => {
                tokens.push((i, Token::LParen));
                i += 1;
            }
            ')' => {
                tokens.push((i, Token::RParen));
                i += 1;
            }
            '?' => {
                tokens.push((i, Token::Question));
                i += 1;
            }
            '*' => {
                tokens.push((i, Token::Star));
                i += 1;
            }
            _ if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_alphanumeric() || d == '_' || d == '-' || d == ':' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                if word == "_" {
                    tokens.push((start, Token::Wildcard));
                } else {
                    tokens.push((start, Token::Label(word.to_string())));
                }
            }
            _ => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(p, _)| p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.here(),
            message: message.into(),
        }
    }

    fn expr(&mut self) -> Result<PathExpr, ParseError> {
        let mut left = self.seq()?;
        while self.peek() == Some(&Token::Pipe) {
            self.bump();
            let right = self.seq()?;
            left = PathExpr::alt(left, right);
        }
        Ok(left)
    }

    fn seq(&mut self) -> Result<PathExpr, ParseError> {
        let mut left = self.post()?;
        while self.peek() == Some(&Token::Dot) {
            self.bump();
            let right = self.post()?;
            left = PathExpr::seq(left, right);
        }
        Ok(left)
    }

    fn post(&mut self) -> Result<PathExpr, ParseError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Some(Token::Question) => {
                    self.bump();
                    e = PathExpr::opt(e);
                }
                Some(Token::Star) => {
                    self.bump();
                    e = PathExpr::star(e);
                }
                _ => return Ok(e),
            }
        }
    }

    fn atom(&mut self) -> Result<PathExpr, ParseError> {
        match self.bump() {
            Some(Token::Label(l)) => Ok(PathExpr::Label(l)),
            Some(Token::Wildcard) => Ok(PathExpr::Wildcard),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseError {
                        position: self.here(),
                        message: "expected ')'".to_string(),
                    }),
                }
            }
            Some(t) => Err(ParseError {
                position: self.here(),
                message: format!("expected label, '_' or '(', found {t:?}"),
            }),
            None => Err(ParseError {
                position: self.here(),
                message: "unexpected end of expression".to_string(),
            }),
        }
    }
}

/// Parse a regular path expression such as `movieDB._?.movie.actor.name`.
pub fn parse(input: &str) -> Result<PathExpr, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(s: &str) {
        let e = parse(s).unwrap();
        let printed = e.to_string();
        let e2 = parse(&printed).unwrap();
        assert_eq!(e, e2, "round trip failed for {s} -> {printed}");
    }

    #[test]
    fn parses_linear_path() {
        let e = parse("director.movie.title").unwrap();
        assert_eq!(e, PathExpr::path(&["director", "movie", "title"]));
    }

    #[test]
    fn parses_paper_expression() {
        // From §3 of the paper.
        let e = parse("movieDB.(_)?.movie.actor.name").unwrap();
        assert_eq!(e.to_string(), "movieDB._?.movie.actor.name");
        assert_eq!(e.max_word_len(), Some(5));
        assert_eq!(e.min_word_len(), 4);
    }

    #[test]
    fn precedence_alternation_binds_loosest() {
        let e = parse("a.b|c").unwrap();
        assert_eq!(
            e,
            PathExpr::alt(PathExpr::path(&["a", "b"]), PathExpr::label("c"))
        );
    }

    #[test]
    fn postfix_binds_tightest() {
        let e = parse("a.b*").unwrap();
        assert_eq!(
            e,
            PathExpr::seq(PathExpr::label("a"), PathExpr::star(PathExpr::label("b")))
        );
    }

    #[test]
    fn parens_override_precedence() {
        let e = parse("(a.b)*").unwrap();
        assert_eq!(e, PathExpr::star(PathExpr::path(&["a", "b"])));
    }

    #[test]
    fn double_postfix_allowed() {
        let e = parse("a?*").unwrap();
        assert_eq!(e, PathExpr::star(PathExpr::opt(PathExpr::label("a"))));
    }

    #[test]
    fn wildcard_token() {
        assert_eq!(parse("_").unwrap(), PathExpr::Wildcard);
        let e = parse("a._.b").unwrap();
        assert_eq!(e.max_word_len(), Some(3));
    }

    #[test]
    fn labels_may_contain_digits_dash_colon() {
        let e = parse("ns:item-2").unwrap();
        assert_eq!(e, PathExpr::label("ns:item-2"));
    }

    #[test]
    fn whitespace_is_ignored() {
        assert_eq!(parse(" a . b ").unwrap(), parse("a.b").unwrap());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("a.b)").is_err());
        assert!(parse("a b").is_err());
    }

    #[test]
    fn rejects_dangling_operators() {
        assert!(parse("a.").is_err());
        assert!(parse("|a").is_err());
        assert!(parse("*").is_err());
        assert!(parse("(a").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse("a.$").unwrap_err();
        assert_eq!(err.position, 2);
        assert!(err.to_string().contains("byte 2"));
    }

    #[test]
    fn round_trips() {
        for s in [
            "a",
            "_",
            "a.b.c",
            "a|b|c",
            "(a|b).c",
            "a.(b|c)*",
            "movieDB._?.movie.actor.name",
            "a?.b*.(c|d)?",
        ] {
            round_trip(s);
        }
    }
}
