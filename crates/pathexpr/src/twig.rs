//! Branching path (twig) queries: `movie[actor][year]/title`.
//!
//! Simple path expressions constrain a node's *incoming* path only; a
//! branching query additionally places predicates on subtrees, e.g. "titles
//! of movies that have an actor". The D(k) paper's future-work section
//! points at the F&B-index (Kaushik et al., SIGMOD 2002) as the covering
//! index for this class; this module provides the query side so
//! `dkindex-core`'s F&B-index has something to cover.
//!
//! Grammar (a deliberately small XPath-like fragment):
//!
//! ```text
//! twig   = step ('/' step)*
//! step   = (LABEL | '_') pred*
//! pred   = '[' twig ']'
//! ```
//!
//! Matching is partial (the spine may start anywhere), child-axis only, and
//! a step matches a node when its label fits and, for every predicate, some
//! child subtree matches the predicate twig.

use crate::parse::ParseError;
use dkindex_graph::{LabeledGraph, NodeId};
use std::fmt;

/// One step of a twig's spine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwigStep {
    /// Label to match; `None` is the wildcard `_`.
    pub label: Option<String>,
    /// Existential child-subtree predicates.
    pub predicates: Vec<Twig>,
}

/// A branching path query: a spine of steps with nested predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Twig {
    /// The spine; the result node is matched by the last step.
    pub steps: Vec<TwigStep>,
}

impl fmt::Display for Twig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            match &step.label {
                Some(l) => write!(f, "{l}")?,
                None => write!(f, "_")?,
            }
            for p in &step.predicates {
                write!(f, "[{p}]")?;
            }
        }
        Ok(())
    }
}

/// Parse a twig query such as `movie[actor/name]/title`.
pub fn parse_twig(input: &str) -> Result<Twig, ParseError> {
    let mut parser = TwigParser {
        input: input.as_bytes(),
        pos: 0,
    };
    let twig = parser.twig()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(ParseError {
            position: parser.pos,
            message: "trailing input after twig".to_string(),
        });
    }
    Ok(twig)
}

struct TwigParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl TwigParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.input.len()
            && matches!(self.input[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn twig(&mut self) -> Result<Twig, ParseError> {
        let mut steps = vec![self.step()?];
        while self.peek() == Some(b'/') {
            self.pos += 1;
            steps.push(self.step()?);
        }
        Ok(Twig { steps })
    }

    fn step(&mut self) -> Result<TwigStep, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos] as char;
            if c.is_alphanumeric() || matches!(c, '_' | '-' | ':' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(ParseError {
                position: self.pos,
                message: "expected a label or '_'".to_string(),
            });
        }
        let word = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii names");
        let label = if word == "_" { None } else { Some(word.to_string()) };
        let mut predicates = Vec::new();
        while self.peek() == Some(b'[') {
            self.pos += 1;
            predicates.push(self.twig()?);
            if self.peek() != Some(b']') {
                return Err(ParseError {
                    position: self.pos,
                    message: "expected ']'".to_string(),
                });
            }
            self.pos += 1;
        }
        Ok(TwigStep { label, predicates })
    }
}

/// Evaluate `twig` on `g` with partial-match semantics: the result is every
/// node matched by the spine's last step. Also returns the number of nodes
/// visited (same cost model as linear path evaluation).
pub fn evaluate_twig<G: LabeledGraph>(g: &G, twig: &Twig) -> (Vec<NodeId>, u64) {
    let mut visited = 0u64;
    // Resolve step labels once.
    let first = &twig.steps[0];
    let mut current: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| step_label_matches(g, first, n))
        .filter(|&n| {
            visited += 1;
            predicates_hold(g, first, n, &mut visited)
        })
        .collect();
    for step in &twig.steps[1..] {
        let mut next: Vec<NodeId> = Vec::new();
        for &n in &current {
            for &c in g.children_of(n) {
                if step_label_matches(g, step, c) {
                    visited += 1;
                    if predicates_hold(g, step, c, &mut visited) {
                        next.push(c);
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current.sort_unstable();
    current.dedup();
    (current, visited)
}

fn step_label_matches<G: LabeledGraph>(g: &G, step: &TwigStep, node: NodeId) -> bool {
    match &step.label {
        None => true,
        Some(name) => g
            .labels()
            .get(name)
            .is_some_and(|id| g.label_of(node) == id),
    }
}

fn predicates_hold<G: LabeledGraph>(
    g: &G,
    step: &TwigStep,
    node: NodeId,
    visited: &mut u64,
) -> bool {
    step.predicates
        .iter()
        .all(|p| matches_from_children(g, p, node, visited))
}

/// Does some child subtree of `node` match `twig` (rooted at the child)?
fn matches_from_children<G: LabeledGraph>(
    g: &G,
    twig: &Twig,
    node: NodeId,
    visited: &mut u64,
) -> bool {
    g.children_of(node)
        .iter()
        .any(|&c| matches_at(g, twig, 0, c, visited))
}

fn matches_at<G: LabeledGraph>(
    g: &G,
    twig: &Twig,
    step_index: usize,
    node: NodeId,
    visited: &mut u64,
) -> bool {
    let step = &twig.steps[step_index];
    if !step_label_matches(g, step, node) {
        return false;
    }
    *visited += 1;
    if !predicates_hold(g, step, node, visited) {
        return false;
    }
    if step_index + 1 == twig.steps.len() {
        return true;
    }
    g.children_of(node)
        .iter()
        .any(|&c| matches_at(g, twig, step_index + 1, c, visited))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::{DataGraph, EdgeKind};

    /// movie₁(title, actor), movie₂(title) — only movie₁ has an actor.
    fn data() -> (DataGraph, NodeId, NodeId) {
        let mut g = DataGraph::new();
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let a = g.add_labeled_node("actor");
        let an = g.add_labeled_node("name");
        let r = g.root();
        g.add_edge(r, m1, EdgeKind::Tree);
        g.add_edge(r, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g.add_edge(m1, a, EdgeKind::Tree);
        g.add_edge(a, an, EdgeKind::Tree);
        (g, t1, t2)
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "movie/title",
            "movie[actor]/title",
            "movie[actor/name][title]/title",
            "_[b]/c",
        ] {
            let t = parse_twig(s).unwrap();
            assert_eq!(t.to_string(), s);
            assert_eq!(parse_twig(&t.to_string()).unwrap(), t);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_twig("").is_err());
        assert!(parse_twig("a[").is_err());
        assert!(parse_twig("a[b").is_err());
        assert!(parse_twig("a/").is_err());
        assert!(parse_twig("a]b").is_err());
    }

    #[test]
    fn predicate_filters_spine() {
        let (g, t1, t2) = data();
        let (all_titles, _) = evaluate_twig(&g, &parse_twig("movie/title").unwrap());
        assert_eq!(all_titles, vec![t1, t2]);
        let (with_actor, _) = evaluate_twig(&g, &parse_twig("movie[actor]/title").unwrap());
        assert_eq!(with_actor, vec![t1]);
    }

    #[test]
    fn nested_predicate_path() {
        let (g, t1, _) = data();
        let (found, _) = evaluate_twig(&g, &parse_twig("movie[actor/name]/title").unwrap());
        assert_eq!(found, vec![t1]);
        let (none, _) = evaluate_twig(&g, &parse_twig("movie[actor/title]/title").unwrap());
        assert!(none.is_empty());
    }

    #[test]
    fn multiple_predicates_conjoin() {
        let (g, t1, _) = data();
        let (found, _) =
            evaluate_twig(&g, &parse_twig("movie[actor][title]/title").unwrap());
        assert_eq!(found, vec![t1]);
    }

    #[test]
    fn wildcard_step() {
        let (g, ..) = data();
        let (found, _) = evaluate_twig(&g, &parse_twig("ROOT/_[actor]").unwrap());
        assert_eq!(found.len(), 1); // movie₁ only
    }

    #[test]
    fn unknown_labels_match_nothing() {
        let (g, ..) = data();
        let (found, _) = evaluate_twig(&g, &parse_twig("ghost/title").unwrap());
        assert!(found.is_empty());
        let (found, _) = evaluate_twig(&g, &parse_twig("movie[ghost]/title").unwrap());
        assert!(found.is_empty());
    }

    #[test]
    fn spine_is_partial_match() {
        let (g, ..) = data();
        // `name` matches without anchoring at the root.
        let (found, _) = evaluate_twig(&g, &parse_twig("actor/name").unwrap());
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn visited_counts_are_positive() {
        let (g, ..) = data();
        let (_, visited) = evaluate_twig(&g, &parse_twig("movie[actor]/title").unwrap());
        assert!(visited > 0);
    }
}
