//! # dkindex-proptest
//!
//! A self-contained property-testing harness exposing the subset of the
//! `proptest` crate API this workspace uses: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_recursive`, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::{select, Index}`, simple
//! character-class string strategies, `any::<T>()`, the [`proptest!`] macro
//! and the `prop_assert*` macros.
//!
//! The workspace builds in fully offline environments, so the external
//! `proptest` dev-dependency is replaced by this crate via Cargo dependency
//! renaming — the test files keep `use proptest::prelude::*` unchanged.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and seed; the
//!   deterministic per-test RNG makes every failure reproducible.
//! * **String strategies** support only the `[class]{m,n}` regex subset the
//!   tests actually use (character classes with ranges, fixed repetition
//!   counts, literal characters).
//! * Case counts come from `ProptestConfig::with_cases` exactly as before.

#![forbid(unsafe_code)]

use dkindex_rng::{Rng as _, RngCore, SeedableRng, StdRng};
use std::rc::Rc;

/// The RNG handed to strategies while sampling.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-test generator.
    pub fn for_test(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15)))
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    #[inline]
    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    #[inline]
    fn chance(&mut self, p: f64) -> bool {
        self.0.gen_bool(p)
    }
}

/// Why a test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from any printable reason.
    pub fn fail<S: ToString>(reason: S) -> TestCaseError {
        TestCaseError(reason.to_string())
    }

    /// `Err(Self::fail(reason))`, matching proptest's helper.
    pub fn reject<S: ToString>(reason: S) -> TestCaseError {
        Self::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. Unlike real proptest there is no shrinking: a strategy
/// is simply a deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Retry until `pred` holds (up to an attempt cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Recursive strategies: `f` receives the strategy for the nested level
    /// and returns the composite one. `depth` bounds the recursion; the other
    /// two parameters (desired size, expected branch factor) are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let deeper = f(level).boxed();
            let shallow = base.clone();
            // Mix leaves back in so trees have varied, bounded depth.
            level = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.chance(0.35) {
                    shallow.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            });
        }
        level
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy::new(move |rng: &mut TestRng| this.sample(rng))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { f: Rc::clone(&self.f) }
    }
}

impl<T> BoxedStrategy<T> {
    fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { f: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates in a row", self.reason);
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index { raw: rng.next_u64() }
    }
}

/// Strategy for any [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e - s) as u64 + 1;
                s + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `&'static str` regex-subset strategies: sequences of `[class]{m,n}` atoms
/// (plus bare literal characters). Supports exactly the patterns this
/// workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            let body = &chars[i + 1..close];
            i = close + 1;
            expand_class(body, pattern)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {m,n} / {n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("repetition bound"),
                    b.trim().parse::<usize>().expect("repetition bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            out.push(class[rng.below(class.len())]);
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if body[j] == '\\' && j + 1 < body.len() {
            set.push(body[j + 1]);
            j += 2;
        } else if j + 2 < body.len() && body[j + 1] == '-' {
            let (a, b) = (body[j], body[j + 2]);
            assert!(a <= b, "bad range in pattern {pattern:?}");
            for c in a..=b {
                set.push(c);
            }
            j += 3;
        } else {
            set.push(body[j]);
            j += 1;
        }
    }
    assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
    set
}

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Namespaced combinators mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Strategy for `Vec<S::Value>` with a length drawn from `range`.
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi_exclusive: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.lo + rng.below((self.hi_exclusive - self.lo).max(1));
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Lengths accepted by [`vec()`].
        pub trait IntoSizeRange {
            /// Convert into `[lo, hi)` bounds.
            fn bounds(self) -> (usize, usize);
        }
        impl IntoSizeRange for std::ops::Range<usize> {
            fn bounds(self) -> (usize, usize) {
                (self.start, self.end)
            }
        }
        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn bounds(self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }
        impl IntoSizeRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self + 1)
            }
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi_exclusive) = len.bounds();
            assert!(lo < hi_exclusive, "empty vec length range");
            VecStrategy {
                element,
                lo,
                hi_exclusive,
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::*;

        /// Strategy producing `Some` three times out of four.
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.chance(0.75) {
                    Some(self.0.sample(rng))
                } else {
                    None
                }
            }
        }

        /// `prop::option::of(inner)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    /// Sampling helpers.
    pub mod sample {
        pub use super::super::sample::{select, Index, Select};
    }
}

/// Sampling helpers (also re-exported under [`prop::sample`]).
pub mod sample {
    use super::*;

    /// A random index usable against collections of any length, mirroring
    /// `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        pub(crate) raw: u64,
    }

    impl Index {
        /// Project onto `0..len`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    /// Strategy choosing one element of a vector uniformly.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// `prop::sample::select(choices)`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select from empty choices");
        Select(choices)
    }
}

/// Everything the test files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Uniform choice among heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::one_of(arms)
    }};
}

/// Runtime support for [`prop_oneof!`].
pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty());
    BoxedStrategy::new(move |rng: &mut TestRng| {
        let i = rng.below(arms.len());
        arms[i].sample(rng)
    })
}

/// Assert a condition inside a property, failing the case (not panicking the
/// harness) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+)
        );
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($a), stringify!($b), a, format!($($fmt)+)
        );
    }};
}

/// The test-defining macro. Mirrors `proptest! { #![proptest_config(..)] ... }`
/// with one or more `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {case}/{}:\n{e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 2u8..7, y in 0usize..=4) {
            prop_assert!((2..7).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((1..5).contains(&v.len()));
        }

        #[test]
        fn recursive_depth_is_bounded(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 4, "depth {} too large", depth(&t));
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z][a-z0-9]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn oneof_and_select(x in prop_oneof![Just(1u8), Just(2u8)],
                            c in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!(c == "a" || c == "b");
        }

        #[test]
        fn index_projects_in_range(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(10) < 10);
            prop_assert_eq!(i.index(1), 0);
        }

        #[test]
        fn filters_apply(s in "[a ]{0,8}".prop_filter("non-blank", |s| !s.trim().is_empty())) {
            prop_assert!(s.contains('a'));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_test("t", 3);
        let mut b = crate::TestRng::for_test("t", 3);
        let s: String = crate::Strategy::sample(&"[a-z]{1,5}", &mut a);
        let t: String = crate::Strategy::sample(&"[a-z]{1,5}", &mut b);
        assert_eq!(s, t);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_info() {
        // No `#[test]` on the inner fn: nested test attributes are inert and
        // rustc warns about them; the property is driven by hand below.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u8..4) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
