//! # dkindex-rng
//!
//! A small, deterministic pseudo-random number generator exposing the subset
//! of the `rand` crate API this workspace actually uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`). The
//! workspace builds in fully offline environments, so the external `rand`
//! crate is replaced by this one via Cargo dependency renaming — callers keep
//! writing `use rand::{Rng, SeedableRng}` unchanged.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` historically used. Streams are fixed
//! forever by this crate: datasets and workloads generated from a seed are
//! reproducible across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Uniform sampling support for [`Rng::gen_range`]: implemented for the
/// integer range types the workspace samples from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range using `rng`.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Value types that can be drawn uniformly from their whole domain via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift rejection-free mapping is overkill here;
                // widening modulo keeps bias below 2^-64 for all spans used.
                let r = ((rng.next_u64() as u128) % span) as $t;
                self.start + r
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as $t;
                start + r
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The sampling interface, mirroring `rand::Rng` for the methods in use.
pub trait Rng: RngCore {
    /// Draw a value covering the type's whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw uniformly from `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Constructors mirroring `rand::SeedableRng` for the methods in use.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: u8 = rng.gen_range(0..=255);
            let _ = z;
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_covers_integer_types() {
        let mut rng = StdRng::seed_from_u64(13);
        let _: u64 = rng.gen();
        let _: u8 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }
}
