//! A minimal blocking DKNP client: connect + handshake, then synchronous
//! request/response rounds. This is the reference client behind
//! `dkindex client` and the load generator in the net bench; it returns
//! decoded [`Frame`]s so callers see exactly what the server said —
//! including [`Frame::Shed`] and [`Frame::Error`], which are answers, not
//! transport failures (PROTOCOL.md §5.2).

use crate::protocol::{self, DecodeError, ErrorCode, Frame};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Per-operation I/O deadline applied by [`NetClient::connect`]: the TCP
/// connect, every read and every write must individually complete within
/// this window or the call fails typed ([`ConnectError::TimedOut`] during
/// connect/handshake, `io::ErrorKind::TimedOut`/`WouldBlock` afterwards).
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Why a connection attempt failed to produce a usable client.
#[derive(Debug)]
pub enum ConnectError {
    /// Transport-level failure (refused, reset).
    Io(io::Error),
    /// The TCP connect or the HELLO/WELCOME handshake did not complete
    /// within the I/O deadline. Safe to retry with backoff — no request
    /// was admitted.
    TimedOut,
    /// The server shed the connection at the door (accept queue full,
    /// PROTOCOL.md §5.1 reason 1). Retry after the hinted backoff.
    Shed {
        /// Server backoff hint.
        retry_after_ms: u32,
    },
    /// The server answered the handshake with a typed refusal
    /// (PROTOCOL.md §6 — e.g. unsupported version). Retrying unchanged is
    /// pointless.
    Refused {
        /// Failure class.
        code: ErrorCode,
        /// Server diagnostic.
        message: String,
    },
    /// The peer spoke something that is not DKNP version 1.
    Protocol(String),
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::Io(err) => write!(f, "connect failed: {err}"),
            ConnectError::TimedOut => write!(f, "connect or handshake timed out"),
            ConnectError::Shed { retry_after_ms } => {
                write!(f, "connection shed (accept queue full); retry after {retry_after_ms} ms")
            }
            ConnectError::Refused { code, message } => {
                write!(f, "handshake refused ({code:?}): {message}")
            }
            ConnectError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ConnectError {}

impl From<io::Error> for ConnectError {
    fn from(err: io::Error) -> Self {
        ConnectError::Io(err)
    }
}

/// A connected, handshaken DKNP client.
pub struct NetClient {
    stream: TcpStream,
    epoch_at_welcome: u64,
}

impl NetClient {
    /// Connect to `addr` and perform the HELLO/WELCOME handshake
    /// (PROTOCOL.md §2) under [`DEFAULT_IO_TIMEOUT`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<NetClient, ConnectError> {
        Self::connect_timeout(addr, DEFAULT_IO_TIMEOUT)
    }

    /// Connect with an explicit per-operation deadline: the TCP connect to
    /// each resolved address, and every subsequent read and write, must
    /// individually finish within `io_timeout`. A zero deadline disables
    /// the timeouts entirely (fully blocking I/O).
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        io_timeout: Duration,
    ) -> Result<NetClient, ConnectError> {
        let mut stream = connect_stream(addr, io_timeout)?;
        if !io_timeout.is_zero() {
            stream.set_read_timeout(Some(io_timeout)).map_err(classify_io)?;
            stream.set_write_timeout(Some(io_timeout)).map_err(classify_io)?;
        }
        let _ = stream.set_nodelay(true);
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: protocol::VERSION,
            },
        )
        .map_err(classify_io)?;
        match read_frame(&mut stream).map_err(classify_io)? {
            Frame::Welcome { version, epoch } if version == protocol::VERSION => Ok(NetClient {
                stream,
                epoch_at_welcome: epoch,
            }),
            Frame::Welcome { version, .. } => Err(ConnectError::Protocol(format!(
                "server answered WELCOME with version {version}"
            ))),
            Frame::Shed { retry_after_ms, .. } => Err(ConnectError::Shed { retry_after_ms }),
            Frame::Error { code, message } => Err(ConnectError::Refused { code, message }),
            other => Err(ConnectError::Protocol(format!(
                "expected WELCOME, got opcode 0x{:02X}",
                other.opcode()
            ))),
        }
    }

    /// The epoch id the server reported at WELCOME time.
    pub fn epoch_at_welcome(&self) -> u64 {
        self.epoch_at_welcome
    }

    /// Replace the per-operation read/write deadline on the live
    /// connection. `None` makes I/O fully blocking.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// One QUERY round (PROTOCOL.md §3.1). `budget` 0 requests the server
    /// default.
    pub fn query(&mut self, text: &str, budget: u32) -> io::Result<Frame> {
        self.round(&Frame::Query {
            budget,
            text: text.to_string(),
        })
    }

    /// One UPDATE round (PROTOCOL.md §3.2).
    pub fn update(&mut self, from: u64, to: u64) -> io::Result<Frame> {
        self.round(&Frame::Update { from, to })
    }

    /// One PING round (PROTOCOL.md §3.3).
    pub fn ping(&mut self) -> io::Result<Frame> {
        self.round(&Frame::Ping)
    }

    /// One STATS round (PROTOCOL.md §3.4).
    pub fn stats(&mut self) -> io::Result<Frame> {
        self.round(&Frame::Stats)
    }

    fn round(&mut self, request: &Frame) -> io::Result<Frame> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)
    }
}

/// Resolve `addr` and try each address under the connect deadline; a zero
/// deadline falls back to the OS default blocking connect.
fn connect_stream<A: ToSocketAddrs>(
    addr: A,
    io_timeout: Duration,
) -> Result<TcpStream, ConnectError> {
    if io_timeout.is_zero() {
        return Ok(TcpStream::connect(addr)?);
    }
    let mut last: Option<io::Error> = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, io_timeout) {
            Ok(stream) => return Ok(stream),
            Err(err) => last = Some(err),
        }
    }
    Err(match last {
        Some(err) => classify_io(err),
        None => ConnectError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            "address resolved to no socket addresses",
        )),
    })
}

/// Map deadline expiry (reported as `TimedOut` or, on some platforms,
/// `WouldBlock`) to the typed variant; everything else stays transport.
fn classify_io(err: io::Error) -> ConnectError {
    if matches!(err.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) {
        ConnectError::TimedOut
    } else {
        ConnectError::Io(err)
    }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    stream.write_all(&protocol::encode(frame))
}

fn read_frame(stream: &mut TcpStream) -> io::Result<Frame> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let length = protocol::check_length(u32::from_le_bytes(header)).map_err(invalid_data)?;
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    protocol::decode_body(&body).map_err(invalid_data)
}

fn invalid_data(err: DecodeError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}
