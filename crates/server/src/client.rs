//! A minimal blocking DKNP client: connect + handshake, then synchronous
//! request/response rounds. This is the reference client behind
//! `dkindex client` and the load generator in the net bench; it returns
//! decoded [`Frame`]s so callers see exactly what the server said —
//! including [`Frame::Shed`] and [`Frame::Error`], which are answers, not
//! transport failures (PROTOCOL.md §5.2).

use crate::protocol::{self, DecodeError, ErrorCode, Frame};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a connection attempt failed to produce a usable client.
#[derive(Debug)]
pub enum ConnectError {
    /// Transport-level failure (refused, reset, timeout).
    Io(io::Error),
    /// The server shed the connection at the door (accept queue full,
    /// PROTOCOL.md §5.1 reason 1). Retry after the hinted backoff.
    Shed {
        /// Server backoff hint.
        retry_after_ms: u32,
    },
    /// The server answered the handshake with a typed refusal
    /// (PROTOCOL.md §6 — e.g. unsupported version). Retrying unchanged is
    /// pointless.
    Refused {
        /// Failure class.
        code: ErrorCode,
        /// Server diagnostic.
        message: String,
    },
    /// The peer spoke something that is not DKNP version 1.
    Protocol(String),
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::Io(err) => write!(f, "connect failed: {err}"),
            ConnectError::Shed { retry_after_ms } => {
                write!(f, "connection shed (accept queue full); retry after {retry_after_ms} ms")
            }
            ConnectError::Refused { code, message } => {
                write!(f, "handshake refused ({code:?}): {message}")
            }
            ConnectError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ConnectError {}

impl From<io::Error> for ConnectError {
    fn from(err: io::Error) -> Self {
        ConnectError::Io(err)
    }
}

/// A connected, handshaken DKNP client.
pub struct NetClient {
    stream: TcpStream,
    epoch_at_welcome: u64,
}

impl NetClient {
    /// Connect to `addr` and perform the HELLO/WELCOME handshake
    /// (PROTOCOL.md §2).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<NetClient, ConnectError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: protocol::VERSION,
            },
        )?;
        match read_frame(&mut stream)? {
            Frame::Welcome { version, epoch } if version == protocol::VERSION => Ok(NetClient {
                stream,
                epoch_at_welcome: epoch,
            }),
            Frame::Welcome { version, .. } => Err(ConnectError::Protocol(format!(
                "server answered WELCOME with version {version}"
            ))),
            Frame::Shed { retry_after_ms, .. } => Err(ConnectError::Shed { retry_after_ms }),
            Frame::Error { code, message } => Err(ConnectError::Refused { code, message }),
            other => Err(ConnectError::Protocol(format!(
                "expected WELCOME, got opcode 0x{:02X}",
                other.opcode()
            ))),
        }
    }

    /// The epoch id the server reported at WELCOME time.
    pub fn epoch_at_welcome(&self) -> u64 {
        self.epoch_at_welcome
    }

    /// One QUERY round (PROTOCOL.md §3.1). `budget` 0 requests the server
    /// default.
    pub fn query(&mut self, text: &str, budget: u32) -> io::Result<Frame> {
        self.round(&Frame::Query {
            budget,
            text: text.to_string(),
        })
    }

    /// One UPDATE round (PROTOCOL.md §3.2).
    pub fn update(&mut self, from: u64, to: u64) -> io::Result<Frame> {
        self.round(&Frame::Update { from, to })
    }

    /// One PING round (PROTOCOL.md §3.3).
    pub fn ping(&mut self) -> io::Result<Frame> {
        self.round(&Frame::Ping)
    }

    /// One STATS round (PROTOCOL.md §3.4).
    pub fn stats(&mut self) -> io::Result<Frame> {
        self.round(&Frame::Stats)
    }

    fn round(&mut self, request: &Frame) -> io::Result<Frame> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)
    }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    stream.write_all(&protocol::encode(frame))
}

fn read_frame(stream: &mut TcpStream) -> io::Result<Frame> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let length = protocol::check_length(u32::from_le_bytes(header)).map_err(invalid_data)?;
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    protocol::decode_body(&body).map_err(invalid_data)
}

fn invalid_data(err: DecodeError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}
