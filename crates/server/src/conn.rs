//! Per-connection request handling: handshake, framed request loop,
//! per-request budget admission, and the epoch-staleness shed gate.
//!
//! One worker thread runs [`serve_connection`] per accepted socket
//! (ARCHITECTURE.md §7). The module is in the `dkindex-analyze`
//! `panic-path` scope — it feeds on attacker-adjacent socket bytes, so
//! every failure is a typed frame ([`Frame::Shed`], [`Frame::Error`]) or a
//! silent close, never a panic — and in the determinism scope, because
//! admission decisions feed the serial-replay oracle: whether an UPDATE is
//! admitted may depend only on the backlog arithmetic specified in
//! PROTOCOL.md §5, never on iteration order or timing of anything else.

use crate::protocol::{self, DecodeError, ErrorCode, Frame, ShedReason};
use crate::server::NetConfig;
use dkindex_core::{ServeError, ServeHandle, ServeOp, Submitter};
use dkindex_graph::NodeId;
use dkindex_pathexpr::parse;
use dkindex_telemetry as telemetry;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How often a blocked read wakes up to check the drain deadline.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// State shared by the accept loop and every worker.
pub(crate) struct Shared {
    /// Lock-free reader handle onto the published epoch chain.
    pub(crate) handle: ServeHandle,
    /// Ops admitted over the wire, *plus* the `ops_applied` baseline of the
    /// epoch current at server start — so `admitted − epoch.ops_applied()`
    /// is exactly the maintenance backlog (PROTOCOL.md §5.1 `pending`).
    pub(crate) admitted: AtomicU64,
    /// Set once at graceful-shutdown start; never cleared.
    pub(crate) draining: AtomicBool,
    /// Wall-clock moment the drain grace window ends; set together with
    /// `draining`.
    pub(crate) drain_deadline: Mutex<Option<Instant>>,
    /// True when the underlying [`dkindex_core::DkServer`] runs with a
    /// write-ahead log: UPDATE_OK is then a *durable* acknowledgment and is
    /// only sent after the op's group commit is fsynced and the epoch
    /// carrying it is published (PROTOCOL.md §8).
    pub(crate) durable: bool,
    /// Immutable serving knobs.
    pub(crate) cfg: NetConfig,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// True once the drain grace window is over: established connections
    /// stop waiting for further requests and close.
    fn drain_expired(&self) -> bool {
        if !self.draining() {
            return false;
        }
        self.drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map(|deadline| Instant::now() >= deadline)
            .unwrap_or(true)
    }

    /// Current maintenance backlog (admitted, not yet published).
    fn pending(&self) -> u64 {
        self.admitted
            .load(Ordering::SeqCst)
            .saturating_sub(self.handle.epoch().ops_applied())
    }
}

/// What one attempt to read a frame produced.
enum ReadOutcome {
    /// A complete, well-formed frame.
    Frame(Frame),
    /// The peer closed (or the connection broke) — just end the
    /// connection, nothing to answer.
    Closed,
    /// The drain grace window expired while idle between frames.
    Expired,
    /// Bytes arrived but did not decode; connection-fatal per
    /// PROTOCOL.md §6.
    Malformed(DecodeError),
}

/// Handle one accepted connection to completion: handshake (PROTOCOL.md
/// §2), then one response per request in order (§3–§4), until the peer
/// closes, a connection-fatal error occurs, or the drain window expires
/// (§7).
pub(crate) fn serve_connection(mut stream: TcpStream, shared: &Shared, submitter: &Submitter) {
    telemetry::metrics::SERVE_NET_CONNECTIONS.incr();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));

    match read_frame(&mut stream, shared) {
        ReadOutcome::Frame(Frame::Hello { version }) if version == protocol::VERSION => {
            let epoch = shared.handle.epoch();
            let welcome = Frame::Welcome {
                version: protocol::VERSION,
                epoch: epoch.id(),
            };
            if !write_frame(&mut stream, &welcome) {
                return;
            }
        }
        ReadOutcome::Frame(Frame::Hello { version }) => {
            telemetry::metrics::SERVE_NET_RESPONSES_ERROR.incr();
            let frame = Frame::Error {
                code: ErrorCode::UnsupportedVersion,
                message: format!(
                    "server speaks DKNP version {}, client sent {version}",
                    protocol::VERSION
                ),
            };
            write_frame(&mut stream, &frame);
            return;
        }
        ReadOutcome::Frame(_) => {
            telemetry::metrics::SERVE_NET_RESPONSES_ERROR.incr();
            let frame = Frame::Error {
                code: ErrorCode::Malformed,
                message: "first frame must be HELLO".to_string(),
            };
            write_frame(&mut stream, &frame);
            return;
        }
        ReadOutcome::Malformed(err) => {
            telemetry::metrics::SERVE_NET_RESPONSES_ERROR.incr();
            let frame = Frame::Error {
                code: ErrorCode::Malformed,
                message: err.to_string(),
            };
            write_frame(&mut stream, &frame);
            return;
        }
        ReadOutcome::Closed | ReadOutcome::Expired => return,
    }

    loop {
        let request = match read_frame(&mut stream, shared) {
            ReadOutcome::Frame(frame) => frame,
            ReadOutcome::Malformed(err) => {
                telemetry::metrics::SERVE_NET_RESPONSES_ERROR.incr();
                let frame = Frame::Error {
                    code: ErrorCode::Malformed,
                    message: err.to_string(),
                };
                write_frame(&mut stream, &frame);
                return;
            }
            ReadOutcome::Closed | ReadOutcome::Expired => return,
        };
        telemetry::metrics::SERVE_NET_REQUESTS.incr();
        let span = telemetry::Span::start(&telemetry::metrics::SERVE_NET_REQUEST_NS);
        let reply = respond(request, shared, submitter);
        let fatal = matches!(
            reply,
            Frame::Error {
                code: ErrorCode::Malformed | ErrorCode::UnsupportedVersion,
                ..
            }
        );
        let written = write_frame(&mut stream, &reply);
        drop(span);
        if !written || fatal {
            return;
        }
    }
}

/// Compute the one response frame for one request frame (PROTOCOL.md
/// §3–§6). Pure with respect to the connection: all state it consults is
/// the shared admission state and the published epoch.
fn respond(request: Frame, shared: &Shared, submitter: &Submitter) -> Frame {
    match request {
        Frame::Query { budget, text } => respond_query(budget, &text, shared),
        Frame::Update { from, to } => respond_update(from, to, shared, submitter),
        Frame::Ping => Frame::Pong {
            epoch: shared.handle.epoch().id(),
        },
        Frame::Stats => {
            let epoch = shared.handle.epoch();
            let admitted = shared.admitted.load(Ordering::SeqCst);
            let mut text = format!(
                "epoch={}\nops_applied={}\nadmitted={admitted}\npending={}\n",
                epoch.id(),
                epoch.ops_applied(),
                admitted.saturating_sub(epoch.ops_applied()),
            );
            // Key-value lines may be appended without a protocol bump
            // (PROTOCOL.md §2); the tuning lines appear only when live
            // tuning is enabled on the serve loop.
            if let Some(tuning) = shared.handle.tuning_stats() {
                text.push_str(&format!(
                    "tune_windows={}\ntune_promotions={}\ntune_demotions={}\n",
                    tuning.windows, tuning.promotions, tuning.demotions,
                ));
            }
            Frame::StatsOk { text }
        }
        Frame::Hello { .. } => {
            telemetry::metrics::SERVE_NET_RESPONSES_ERROR.incr();
            Frame::Error {
                code: ErrorCode::Malformed,
                message: "HELLO after handshake".to_string(),
            }
        }
        // Server-to-client opcodes arriving as requests are malformed.
        Frame::Welcome { .. }
        | Frame::Answer { .. }
        | Frame::UpdateOk { .. }
        | Frame::Pong { .. }
        | Frame::StatsOk { .. }
        | Frame::Shed { .. }
        | Frame::Error { .. } => {
            telemetry::metrics::SERVE_NET_RESPONSES_ERROR.incr();
            Frame::Error {
                code: ErrorCode::Malformed,
                message: "response opcode sent as a request".to_string(),
            }
        }
    }
}

/// QUERY: clamp the budget (PROTOCOL.md §3.1), evaluate against the
/// current epoch, answer or abort typed.
fn respond_query(budget: u32, text: &str, shared: &Shared) -> Frame {
    let expr = match parse(text) {
        Ok(expr) => expr,
        Err(err) => {
            telemetry::metrics::SERVE_NET_RESPONSES_ERROR.incr();
            return Frame::Error {
                code: ErrorCode::BadQuery,
                message: err.to_string(),
            };
        }
    };
    let effective = if budget == 0 {
        shared.cfg.default_budget
    } else {
        u64::from(budget).min(shared.cfg.max_budget)
    };
    let epoch = shared.handle.epoch();
    match epoch.evaluate_bounded(&expr, effective) {
        Ok(outcome) => {
            telemetry::metrics::SERVE_NET_QUERIES.incr();
            Frame::Answer {
                epoch: epoch.id(),
                index_visits: outcome.cost.index_visits,
                data_visits: outcome.cost.data_visits,
                validated: outcome.validated,
                match_count: outcome.matches.len().min(u32::MAX as usize) as u32,
                ids: outcome
                    .matches
                    .iter()
                    .take(protocol::MAX_ANSWER_IDS)
                    .map(|n| n.index() as u64)
                    .collect(),
            }
        }
        Err(aborted) => {
            telemetry::metrics::SERVE_NET_BUDGET_ABORTS.incr();
            telemetry::metrics::SERVE_NET_RESPONSES_ERROR.incr();
            Frame::Error {
                code: ErrorCode::BudgetExhausted,
                message: aborted.to_string(),
            }
        }
    }
}

/// UPDATE: the admission gate (PROTOCOL.md §3.2, §5). During drain every
/// update is shed; otherwise a slot is reserved against the staleness
/// threshold and released again if the reservation overshot — the backlog
/// is bounded by construction, shedding typed instead of queueing
/// unboundedly.
fn respond_update(from: u64, to: u64, shared: &Shared, submitter: &Submitter) -> Frame {
    if shared.draining() {
        telemetry::metrics::SERVE_NET_RESPONSES_SHED.incr();
        return Frame::Shed {
            reason: ShedReason::Draining,
            pending: clamp_u32(shared.pending()),
            retry_after_ms: shared.cfg.retry_after_ms,
        };
    }
    // Reserve a backlog slot first so concurrent workers can never admit
    // past the threshold between a read and an increment.
    let reserved = shared.admitted.fetch_add(1, Ordering::SeqCst) + 1;
    let applied = shared.handle.epoch().ops_applied();
    let pending = reserved.saturating_sub(applied);
    if pending > shared.cfg.staleness_threshold {
        shared.admitted.fetch_sub(1, Ordering::SeqCst);
        telemetry::metrics::SERVE_NET_RESPONSES_SHED.incr();
        return Frame::Shed {
            reason: ShedReason::MaintenanceLag,
            pending: clamp_u32(pending.saturating_sub(1)),
            retry_after_ms: shared.cfg.retry_after_ms,
        };
    }
    let op = ServeOp::AddEdge {
        from: NodeId::from_index(from.min(u32::MAX as u64) as usize),
        to: NodeId::from_index(to.min(u32::MAX as u64) as usize),
    };
    if shared.durable {
        // Durable-ack path (PROTOCOL.md §8): block this worker until the
        // group commit carrying the op is fsynced and its epoch published.
        // A WAL failure surfaces as a typed refusal — the op was *not*
        // applied, so the admission reservation is released.
        let waited = submitter.submit_logged(op).and_then(|ack| ack.wait());
        return match waited {
            Ok(_epoch) => {
                telemetry::metrics::SERVE_NET_UPDATES_ADMITTED.incr();
                Frame::UpdateOk {
                    pending: clamp_u32(pending),
                }
            }
            Err(err) => refuse_update(err, shared),
        };
    }
    match submitter.submit(op) {
        Ok(()) => {
            telemetry::metrics::SERVE_NET_UPDATES_ADMITTED.incr();
            Frame::UpdateOk {
                pending: clamp_u32(pending),
            }
        }
        Err(err) => refuse_update(err, shared),
    }
}

/// Release an admission reservation for an update that will never be
/// applied and turn the serve-layer failure into the typed wire refusal
/// (PROTOCOL.md §6 code 5): both "maintenance thread is gone" and
/// "write-ahead log failed" mean the server cannot currently apply
/// updates.
fn refuse_update(err: ServeError, shared: &Shared) -> Frame {
    shared.admitted.fetch_sub(1, Ordering::SeqCst);
    telemetry::metrics::SERVE_NET_RESPONSES_ERROR.incr();
    Frame::Error {
        code: ErrorCode::Unavailable,
        message: err.to_string(),
    }
}

fn clamp_u32(value: u64) -> u32 {
    value.min(u64::from(u32::MAX)) as u32
}

/// Read one full frame: length prefix, bounds check (PROTOCOL.md §1.1),
/// body, decode. Between frames the read polls the drain deadline; once a
/// frame has begun arriving it is read to completion (a response begun is
/// a response completed — §7 — and likewise a request begun is read).
fn read_frame(stream: &mut TcpStream, shared: &Shared) -> ReadOutcome {
    let mut header = [0u8; 4];
    match read_exact_polling(stream, &mut header, shared, true) {
        ReadStatus::Done => {}
        ReadStatus::Closed => return ReadOutcome::Closed,
        ReadStatus::Expired => return ReadOutcome::Expired,
    }
    let length = u32::from_le_bytes(header);
    let length = match protocol::check_length(length) {
        Ok(length) => length,
        Err(err) => return ReadOutcome::Malformed(err),
    };
    let mut body = vec![0u8; length];
    match read_exact_polling(stream, &mut body, shared, false) {
        ReadStatus::Done => {}
        ReadStatus::Closed => return ReadOutcome::Closed,
        ReadStatus::Expired => return ReadOutcome::Expired,
    }
    telemetry::metrics::SERVE_NET_BYTES_READ.add(4 + length as u64);
    match protocol::decode_body(&body) {
        Ok(frame) => ReadOutcome::Frame(frame),
        Err(err) => ReadOutcome::Malformed(err),
    }
}

enum ReadStatus {
    Done,
    Closed,
    Expired,
}

/// Fill `buf` from the socket, waking every [`POLL_INTERVAL`] to check the
/// drain deadline. `expire_at_boundary` is true only for the first bytes
/// of a frame: expiry never cuts a frame in half. I/O errors map to
/// `Closed` — the connection is over either way and nothing can be written
/// back reliably.
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    expire_at_boundary: bool,
) -> ReadStatus {
    let mut filled = 0usize;
    loop {
        if filled == buf.len() {
            return ReadStatus::Done;
        }
        if expire_at_boundary && filled == 0 && shared.drain_expired() {
            return ReadStatus::Expired;
        }
        let Some(rest) = buf.get_mut(filled..) else {
            return ReadStatus::Closed;
        };
        match stream.read(rest) {
            Ok(0) => return ReadStatus::Closed,
            Ok(n) => filled += n,
            Err(err)
                if matches!(
                    err.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(_) => return ReadStatus::Closed,
        }
    }
}

/// Encode and write one frame; false means the connection is gone (the
/// caller ends it — writes to shed/refuse are best-effort by design).
fn write_frame(stream: &mut TcpStream, frame: &Frame) -> bool {
    let bytes = protocol::encode(frame);
    match stream.write_all(&bytes) {
        Ok(()) => {
            telemetry::metrics::SERVE_NET_BYTES_WRITTEN.add(bytes.len() as u64);
            true
        }
        Err(_) => false,
    }
}
