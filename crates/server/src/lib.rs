//! `dkindex-server`: the network serving front-end for the D(k)-index.
//!
//! Exposes the epoch-published concurrent serve layer
//! (`dkindex_core::serve`) over DKNP, a length-prefixed binary protocol on
//! plain `std::net` TCP (the toolchain is offline — no async runtime).
//! The wire format is specified normatively in docs/PROTOCOL.md and the
//! operational envelope (tuning, telemetry, capacity planning) in
//! docs/OPERATIONS.md; the serving architecture is ARCHITECTURE.md §7.
//!
//! Three design rules, enforced across the module tree:
//!
//! 1. **Every queue is bounded, every refusal is typed.** The accept
//!    queue sheds connections, the staleness gate sheds updates — both
//!    with SHED frames that tell the client it is safe to retry
//!    (PROTOCOL.md §5.2). Overload can never grow memory without bound or
//!    silently stretch latency.
//! 2. **The wire cannot panic the server.** [`protocol`] and the
//!    connection handler are in the `dkindex-analyze` `panic-path` scope:
//!    arbitrary bytes decode to typed errors, full stop.
//! 3. **The network layer adds no nondeterminism to the index.** Admitted
//!    updates flow through the same single maintenance thread in
//!    admission order; the net bench replays the admitted sequence through
//!    the serial oracle and compares snapshot bytes
//!    (`reproduce verify-net`).

#![forbid(unsafe_code)]

mod client;
mod conn;
pub mod protocol;
mod retry;
mod server;

pub use client::{ConnectError, NetClient, DEFAULT_IO_TIMEOUT};
pub use protocol::{DecodeError, ErrorCode, Frame, ShedReason};
pub use retry::{RetryClient, RetryError, RetryPolicy, RetryStats};
pub use server::{NetConfig, NetServer, NetShutdown};
