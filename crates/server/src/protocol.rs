//! The DKNP wire format: frame encode/decode, panic-free.
//!
//! Normative layout lives in docs/PROTOCOL.md; this module is its only
//! implementation and the golden byte tests
//! (`crates/server/tests/protocol_golden.rs`) pin the two to each other
//! section by section. Every frame is `u32 LE length | u8 opcode |
//! payload` (PROTOCOL.md §1) where `length` counts the opcode byte plus
//! the payload.
//!
//! This module parses attacker-adjacent bytes off a socket, so it is in
//! the `dkindex-analyze` `panic-path` scope: every read goes through the
//! Option-returning `Cursor` (the same discipline as the durability
//! formats in `core::bytes`), decode failures are the typed
//! [`DecodeError`], and nothing here indexes, unwraps, or panics. It is
//! also in the determinism scope: encoding is a pure function of the
//! frame value — byte-for-byte reproducible, which is what lets the net
//! bench compare concurrent transcripts against serial replay.

/// Protocol version implemented by this crate (PROTOCOL.md §2.2).
pub const VERSION: u16 = 1;

/// The HELLO magic, ASCII `DKNP` (PROTOCOL.md §2.1).
pub const MAGIC: [u8; 4] = *b"DKNP";

/// Hard bound on `length` (opcode + payload bytes) — PROTOCOL.md §1.1.
pub const MAX_FRAME: u32 = 1 << 20;

/// ANSWER frames carry at most this many match node ids (PROTOCOL.md
/// §4.1); `match_count` still reports the true total.
pub const MAX_ANSWER_IDS: usize = 32;

/// Why an UPDATE (or a whole connection) was refused — PROTOCOL.md §5.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded accept queue was full; the connection never reached a
    /// worker.
    QueueFull,
    /// The maintenance backlog reached the staleness threshold.
    MaintenanceLag,
    /// The server is draining; no new updates are accepted.
    Draining,
}

impl ShedReason {
    /// The wire byte (PROTOCOL.md §5.1 table).
    pub fn code(self) -> u8 {
        match self {
            ShedReason::QueueFull => 1,
            ShedReason::MaintenanceLag => 2,
            ShedReason::Draining => 3,
        }
    }

    fn from_code(code: u8) -> Option<ShedReason> {
        match code {
            1 => Some(ShedReason::QueueFull),
            2 => Some(ShedReason::MaintenanceLag),
            3 => Some(ShedReason::Draining),
            _ => None,
        }
    }
}

/// ERROR frame codes — PROTOCOL.md §6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unframeable bytes, unknown opcode, or payload size mismatch;
    /// connection-fatal.
    Malformed,
    /// HELLO version mismatch; connection-fatal.
    UnsupportedVersion,
    /// QUERY text failed to parse.
    BadQuery,
    /// Evaluation aborted when the effective visit budget ran out.
    BudgetExhausted,
    /// The maintenance thread is gone; updates can never be applied.
    Unavailable,
}

impl ErrorCode {
    /// The wire byte (PROTOCOL.md §6 table).
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::BadQuery => 3,
            ErrorCode::BudgetExhausted => 4,
            ErrorCode::Unavailable => 5,
        }
    }

    fn from_code(code: u8) -> Option<ErrorCode> {
        match code {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::UnsupportedVersion),
            3 => Some(ErrorCode::BadQuery),
            4 => Some(ErrorCode::BudgetExhausted),
            5 => Some(ErrorCode::Unavailable),
            _ => None,
        }
    }
}

/// One DKNP frame, either direction. Field order mirrors the byte order
/// in docs/PROTOCOL.md.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client hello — PROTOCOL.md §2.1 (the magic is implicit: encode
    /// writes it, decode requires it).
    Hello {
        /// Client protocol version.
        version: u16,
    },
    /// Server welcome — PROTOCOL.md §2.1.
    Welcome {
        /// Server protocol version.
        version: u16,
        /// Currently published epoch id.
        epoch: u64,
    },
    /// Path query request — PROTOCOL.md §3.1.
    Query {
        /// Requested visit budget; `0` means the server default.
        budget: u32,
        /// Path expression text.
        text: String,
    },
    /// Edge-addition update request — PROTOCOL.md §3.2.
    Update {
        /// Source data node id.
        from: u64,
        /// Target data node id.
        to: u64,
    },
    /// Liveness probe — PROTOCOL.md §3.3.
    Ping,
    /// Server statistics request — PROTOCOL.md §3.4.
    Stats,
    /// Query answer — PROTOCOL.md §4.1.
    Answer {
        /// Epoch the answer was computed against.
        epoch: u64,
        /// Index-graph visits charged.
        index_visits: u64,
        /// Data-graph visits charged during validation.
        data_visits: u64,
        /// Whether any match needed the validation walk.
        validated: bool,
        /// Total matches (may exceed `ids.len()`).
        match_count: u32,
        /// At most [`MAX_ANSWER_IDS`] leading match node ids.
        ids: Vec<u64>,
    },
    /// Update admitted — PROTOCOL.md §4.2.
    UpdateOk {
        /// Maintenance backlog at admission, including this op.
        pending: u32,
    },
    /// Ping reply — PROTOCOL.md §4.3.
    Pong {
        /// Currently published epoch id.
        epoch: u64,
    },
    /// Stats reply — PROTOCOL.md §4.4 (informational text, not
    /// machine-parseable).
    StatsOk {
        /// `key=value` lines.
        text: String,
    },
    /// Typed overload refusal — PROTOCOL.md §5.
    Shed {
        /// Why the request was refused.
        reason: ShedReason,
        /// Backlog at shed time (0 when unknown).
        pending: u32,
        /// Backoff hint for the client.
        retry_after_ms: u32,
    },
    /// Typed failure — PROTOCOL.md §6.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable diagnostic.
        message: String,
    },
}

/// Why a byte sequence failed to decode as a frame. Every variant maps to
/// ERROR code 1 (malformed) on the wire except `UnsupportedVersion`
/// handling, which the connection layer derives from a decoded `Hello`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the opcode's fixed fields did.
    Truncated,
    /// Fixed-size frame carried extra bytes after its last field.
    TrailingBytes,
    /// No frame type is assigned to this opcode byte.
    UnknownOpcode(u8),
    /// HELLO magic was not `DKNP`.
    BadMagic,
    /// A reason/code byte outside its table, or a textual field that was
    /// not UTF-8.
    BadField,
    /// A declared length of 0 or above [`MAX_FRAME`] (checked by the
    /// framing layer before the body is read).
    BadLength(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame payload truncated"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after frame payload"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02X}"),
            DecodeError::BadMagic => write!(f, "HELLO magic is not DKNP"),
            DecodeError::BadField => write!(f, "field value outside its table or bad UTF-8"),
            DecodeError::BadLength(len) => write!(f, "frame length {len} outside 1..={MAX_FRAME}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Opcode bytes (PROTOCOL.md §2–§6).
mod opcode {
    pub const HELLO: u8 = 0x01;
    pub const WELCOME: u8 = 0x02;
    pub const QUERY: u8 = 0x10;
    pub const UPDATE: u8 = 0x11;
    pub const PING: u8 = 0x12;
    pub const STATS: u8 = 0x13;
    pub const ANSWER: u8 = 0x20;
    pub const UPDATE_OK: u8 = 0x21;
    pub const PONG: u8 = 0x22;
    pub const STATS_OK: u8 = 0x23;
    pub const SHED: u8 = 0x2E;
    pub const ERROR: u8 = 0x2F;
}

impl Frame {
    /// This frame's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Frame::Hello { .. } => opcode::HELLO,
            Frame::Welcome { .. } => opcode::WELCOME,
            Frame::Query { .. } => opcode::QUERY,
            Frame::Update { .. } => opcode::UPDATE,
            Frame::Ping => opcode::PING,
            Frame::Stats => opcode::STATS,
            Frame::Answer { .. } => opcode::ANSWER,
            Frame::UpdateOk { .. } => opcode::UPDATE_OK,
            Frame::Pong { .. } => opcode::PONG,
            Frame::StatsOk { .. } => opcode::STATS_OK,
            Frame::Shed { .. } => opcode::SHED,
            Frame::Error { .. } => opcode::ERROR,
        }
    }
}

/// Encode `frame` as its full wire bytes: length prefix, opcode, payload
/// (PROTOCOL.md §1). Encoding is infallible and deterministic; textual
/// fields longer than the frame bound are truncated at a char boundary so
/// the result is always a legal frame.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut payload: Vec<u8> = Vec::new();
    match frame {
        Frame::Hello { version } => {
            payload.extend_from_slice(&MAGIC);
            payload.extend_from_slice(&version.to_le_bytes());
        }
        Frame::Welcome { version, epoch } => {
            payload.extend_from_slice(&version.to_le_bytes());
            payload.extend_from_slice(&epoch.to_le_bytes());
        }
        Frame::Query { budget, text } => {
            payload.extend_from_slice(&budget.to_le_bytes());
            payload.extend_from_slice(bounded_text(text).as_bytes());
        }
        Frame::Update { from, to } => {
            payload.extend_from_slice(&from.to_le_bytes());
            payload.extend_from_slice(&to.to_le_bytes());
        }
        Frame::Ping | Frame::Stats => {}
        Frame::Answer {
            epoch,
            index_visits,
            data_visits,
            validated,
            match_count,
            ids,
        } => {
            payload.extend_from_slice(&epoch.to_le_bytes());
            payload.extend_from_slice(&index_visits.to_le_bytes());
            payload.extend_from_slice(&data_visits.to_le_bytes());
            payload.push(u8::from(*validated));
            payload.extend_from_slice(&match_count.to_le_bytes());
            for id in ids.iter().take(MAX_ANSWER_IDS) {
                payload.extend_from_slice(&id.to_le_bytes());
            }
        }
        Frame::UpdateOk { pending } => {
            payload.extend_from_slice(&pending.to_le_bytes());
        }
        Frame::Pong { epoch } => {
            payload.extend_from_slice(&epoch.to_le_bytes());
        }
        Frame::StatsOk { text } => {
            payload.extend_from_slice(bounded_text(text).as_bytes());
        }
        Frame::Shed {
            reason,
            pending,
            retry_after_ms,
        } => {
            payload.push(reason.code());
            payload.extend_from_slice(&pending.to_le_bytes());
            payload.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Frame::Error { code, message } => {
            payload.push(code.code());
            payload.extend_from_slice(bounded_text(message).as_bytes());
        }
    }
    let length = payload.len() as u32 + 1;
    let mut out = Vec::with_capacity(payload.len() + 5);
    out.extend_from_slice(&length.to_le_bytes());
    out.push(frame.opcode());
    out.extend_from_slice(&payload);
    out
}

/// Clamp a textual field so `fixed fields + text` can never exceed
/// [`MAX_FRAME`]: keep a comfortable margin and cut at a char boundary.
fn bounded_text(text: &str) -> &str {
    const MAX_TEXT: usize = (MAX_FRAME as usize) - 64;
    if text.len() <= MAX_TEXT {
        return text;
    }
    let mut end = MAX_TEXT;
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    text.get(..end).unwrap_or_default()
}

/// Validate a just-read length prefix before buffering the body
/// (PROTOCOL.md §1.1): zero and oversize are both malformed.
pub fn check_length(length: u32) -> Result<usize, DecodeError> {
    if length == 0 || length > MAX_FRAME {
        return Err(DecodeError::BadLength(length));
    }
    Ok(length as usize)
}

/// Decode one frame body — the `opcode | payload` bytes that follow the
/// length prefix (PROTOCOL.md §1). Fixed-size frames must consume their
/// payload exactly; trailing bytes are malformed.
pub fn decode_body(body: &[u8]) -> Result<Frame, DecodeError> {
    let mut c = Cursor::new(body);
    let op = c.u8().ok_or(DecodeError::Truncated)?;
    let frame = match op {
        opcode::HELLO => {
            let magic = c.array4().ok_or(DecodeError::Truncated)?;
            if magic != MAGIC {
                return Err(DecodeError::BadMagic);
            }
            let version = c.u16_le().ok_or(DecodeError::Truncated)?;
            Frame::Hello { version }
        }
        opcode::WELCOME => Frame::Welcome {
            version: c.u16_le().ok_or(DecodeError::Truncated)?,
            epoch: c.u64_le().ok_or(DecodeError::Truncated)?,
        },
        opcode::QUERY => {
            let budget = c.u32_le().ok_or(DecodeError::Truncated)?;
            let text = c.rest_utf8().ok_or(DecodeError::BadField)?;
            return Ok(Frame::Query { budget, text });
        }
        opcode::UPDATE => Frame::Update {
            from: c.u64_le().ok_or(DecodeError::Truncated)?,
            to: c.u64_le().ok_or(DecodeError::Truncated)?,
        },
        opcode::PING => Frame::Ping,
        opcode::STATS => Frame::Stats,
        opcode::ANSWER => {
            let epoch = c.u64_le().ok_or(DecodeError::Truncated)?;
            let index_visits = c.u64_le().ok_or(DecodeError::Truncated)?;
            let data_visits = c.u64_le().ok_or(DecodeError::Truncated)?;
            let validated = match c.u8().ok_or(DecodeError::Truncated)? {
                0 => false,
                1 => true,
                _ => return Err(DecodeError::BadField),
            };
            let match_count = c.u32_le().ok_or(DecodeError::Truncated)?;
            // The id list length is implied: min(match_count, cap), and the
            // remaining payload must be exactly that many u64s.
            let expected = (match_count as usize).min(MAX_ANSWER_IDS);
            let mut ids = Vec::with_capacity(expected);
            for _ in 0..expected {
                ids.push(c.u64_le().ok_or(DecodeError::Truncated)?);
            }
            Frame::Answer {
                epoch,
                index_visits,
                data_visits,
                validated,
                match_count,
                ids,
            }
        }
        opcode::UPDATE_OK => Frame::UpdateOk {
            pending: c.u32_le().ok_or(DecodeError::Truncated)?,
        },
        opcode::PONG => Frame::Pong {
            epoch: c.u64_le().ok_or(DecodeError::Truncated)?,
        },
        opcode::STATS_OK => {
            let text = c.rest_utf8().ok_or(DecodeError::BadField)?;
            return Ok(Frame::StatsOk { text });
        }
        opcode::SHED => Frame::Shed {
            reason: ShedReason::from_code(c.u8().ok_or(DecodeError::Truncated)?)
                .ok_or(DecodeError::BadField)?,
            pending: c.u32_le().ok_or(DecodeError::Truncated)?,
            retry_after_ms: c.u32_le().ok_or(DecodeError::Truncated)?,
        },
        opcode::ERROR => {
            let code = ErrorCode::from_code(c.u8().ok_or(DecodeError::Truncated)?)
                .ok_or(DecodeError::BadField)?;
            let message = c.rest_utf8().ok_or(DecodeError::BadField)?;
            return Ok(Frame::Error { code, message });
        }
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    if c.remaining() != 0 {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(frame)
}

/// A forward-only panic-free reader over a byte slice — the same
/// discipline as `core::bytes::Cursor` (that one is `pub(crate)` to the
/// core crate, so the wire format carries its own).
struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, offset: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.offset)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.offset.checked_add(n)?;
        let slice = self.bytes.get(self.offset..end)?;
        self.offset = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    fn u16_le(&mut self) -> Option<u16> {
        let slice = self.take(2)?;
        let mut out = [0u8; 2];
        for (dst, src) in out.iter_mut().zip(slice) {
            *dst = *src;
        }
        Some(u16::from_le_bytes(out))
    }

    fn u32_le(&mut self) -> Option<u32> {
        let slice = self.take(4)?;
        let mut out = [0u8; 4];
        for (dst, src) in out.iter_mut().zip(slice) {
            *dst = *src;
        }
        Some(u32::from_le_bytes(out))
    }

    fn u64_le(&mut self) -> Option<u64> {
        let slice = self.take(8)?;
        let mut out = [0u8; 8];
        for (dst, src) in out.iter_mut().zip(slice) {
            *dst = *src;
        }
        Some(u64::from_le_bytes(out))
    }

    fn array4(&mut self) -> Option<[u8; 4]> {
        let slice = self.take(4)?;
        let mut out = [0u8; 4];
        for (dst, src) in out.iter_mut().zip(slice) {
            *dst = *src;
        }
        Some(out)
    }

    /// Consume everything left as UTF-8 text.
    fn rest_utf8(&mut self) -> Option<String> {
        let slice = self.take(self.remaining())?;
        String::from_utf8(slice.to_vec()).ok()
    }
}
