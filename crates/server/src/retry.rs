//! `RetryClient`: the reference retry loop around [`NetClient`],
//! implementing the client obligations of PROTOCOL.md §5.2 and the
//! durable-ack contract of §8.
//!
//! The rules it encodes:
//!
//! * **SHED is a promise that nothing was admitted**, so *any* request —
//!   updates included — may be retried after a SHED, and the retry sleep
//!   honors the server's `retry_after_ms` hint (never sleeps less).
//! * **A transport failure mid-update is ambiguous**: the op may or may
//!   not have been admitted (and, under `--wal`, made durable) before the
//!   connection broke. Updates are therefore *never* retried across a
//!   transport error — the caller gets a typed [`RetryError::Transport`]
//!   and must reconcile (e.g. re-read via a query) before resending.
//! * **Queries, pings and stats are read-only**, so transport failures
//!   there are retried with a fresh connection.
//! * **Backoff is exponential with seeded jitter** and doubly bounded: by
//!   attempt count ([`RetryPolicy::max_attempts`]) and by total sleep
//!   ([`RetryPolicy::backoff_budget_ms`]). The jitter stream is a
//!   splitmix64 sequence from [`RetryPolicy::seed`], so a bench or test
//!   run retries on a reproducible schedule.

use crate::client::{ConnectError, NetClient};
use crate::protocol::{ErrorCode, Frame};
use std::io;
use std::time::Duration;

/// Knobs for a [`RetryClient`]. The defaults suit a loopback bench:
/// ~10 ms first backoff, ~1 s cap, at most 8 attempts and 10 s of total
/// sleeping per logical operation.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts per logical operation (first try included). `0` is
    /// treated as 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff_ms: u64,
    /// Ceiling on a single backoff sleep (before the SHED hint, which may
    /// exceed it — the hint always wins).
    pub max_backoff_ms: u64,
    /// Ceiling on *cumulative* backoff sleep across one logical
    /// operation; exceeding it fails typed instead of sleeping.
    pub backoff_budget_ms: u64,
    /// Per-operation I/O deadline for connect, reads and writes; `0`
    /// disables the deadlines (fully blocking I/O).
    pub io_timeout_ms: u64,
    /// Seed for the jitter stream; equal seeds retry on equal schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            backoff_budget_ms: 10_000,
            io_timeout_ms: 5_000,
            seed: 0x5eed_cafe,
        }
    }
}

/// Why a [`RetryClient`] operation gave up.
#[derive(Debug)]
pub enum RetryError {
    /// Attempt count or backoff budget exhausted; `last` describes the
    /// final refusal (typically a SHED or a connect timeout).
    BudgetExhausted {
        /// Attempts actually made.
        attempts: u32,
        /// Human-readable description of the last outcome.
        last: String,
    },
    /// The server refused the handshake in a way retrying cannot fix
    /// (PROTOCOL.md §6 — e.g. unsupported version).
    Refused {
        /// Failure class.
        code: ErrorCode,
        /// Server diagnostic.
        message: String,
    },
    /// A transport failure on a non-retryable operation (an update whose
    /// admission state is unknown). The connection has been dropped; the
    /// caller must reconcile before resending.
    Transport(io::Error),
    /// The peer violated DKNP framing.
    Protocol(String),
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::BudgetExhausted { attempts, last } => {
                write!(f, "retry budget exhausted after {attempts} attempts; last: {last}")
            }
            RetryError::Refused { code, message } => {
                write!(f, "server refused ({code:?}): {message}")
            }
            RetryError::Transport(err) => {
                write!(f, "transport failure (op state unknown, not retried): {err}")
            }
            RetryError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for RetryError {}

/// Counters a [`RetryClient`] keeps about its own behavior, for benches
/// and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetryStats {
    /// Individual request attempts made (retries included).
    pub attempts: u64,
    /// Attempts beyond the first, per logical operation.
    pub retries: u64,
    /// Total milliseconds slept in backoff.
    pub backoff_ms_total: u64,
    /// Fresh connections established (the initial one included).
    pub reconnects: u64,
}

/// A self-healing DKNP client: wraps [`NetClient`] with deadlines,
/// SHED-aware retry and reconnection. See the module docs for the exact
/// retry rules.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    rng: u64,
    client: Option<NetClient>,
    stats: RetryStats,
}

impl RetryClient {
    /// Connect to `addr` under `policy`, retrying door-shed and timed-out
    /// connects with backoff.
    pub fn connect(addr: &str, policy: RetryPolicy) -> Result<RetryClient, RetryError> {
        let mut client = RetryClient {
            addr: addr.to_string(),
            policy,
            rng: policy.seed,
            client: None,
            stats: RetryStats::default(),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// What this client has done so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// One QUERY, retried across SHED frames *and* transport failures
    /// (queries are read-only, so a retry is always safe).
    pub fn query(&mut self, text: &str, budget: u32) -> Result<Frame, RetryError> {
        self.retryable(|client| client.query(text, budget))
    }

    /// One PING, retried like a query.
    pub fn ping(&mut self) -> Result<Frame, RetryError> {
        self.retryable(NetClient::ping)
    }

    /// One STATS round, retried like a query.
    pub fn stats_frame(&mut self) -> Result<Frame, RetryError> {
        self.retryable(NetClient::stats)
    }

    /// One UPDATE. Retried **only** after a SHED frame (the server
    /// promises a shed op was not admitted — PROTOCOL.md §5.2); a
    /// transport failure mid-round is returned typed because the op may
    /// already be admitted and durable (§8).
    pub fn update(&mut self, from: u64, to: u64) -> Result<Frame, RetryError> {
        let mut attempt = 0u32;
        loop {
            self.ensure_connected()?;
            self.stats.attempts += 1;
            let Some(client) = self.client.as_mut() else {
                return Err(RetryError::Protocol("connection lost".to_string()));
            };
            match client.update(from, to) {
                Ok(Frame::Shed { retry_after_ms, .. }) => {
                    self.backoff(&mut attempt, Some(retry_after_ms), "update shed")?;
                }
                Ok(frame) => return Ok(frame),
                Err(err) => {
                    self.client = None;
                    return Err(RetryError::Transport(err));
                }
            }
        }
    }

    /// Run one read-only round with full retry: SHED honors the hint,
    /// transport failures reconnect.
    fn retryable(
        &mut self,
        mut round: impl FnMut(&mut NetClient) -> io::Result<Frame>,
    ) -> Result<Frame, RetryError> {
        let mut attempt = 0u32;
        loop {
            self.ensure_connected()?;
            self.stats.attempts += 1;
            let Some(client) = self.client.as_mut() else {
                return Err(RetryError::Protocol("connection lost".to_string()));
            };
            match round(client) {
                Ok(Frame::Shed { retry_after_ms, .. }) => {
                    self.backoff(&mut attempt, Some(retry_after_ms), "request shed")?;
                }
                Ok(frame) => return Ok(frame),
                Err(err) => {
                    self.client = None;
                    self.backoff(&mut attempt, None, &format!("transport: {err}"))?;
                }
            }
        }
    }

    /// Dial (with retry) if there is no live connection.
    fn ensure_connected(&mut self) -> Result<(), RetryError> {
        if self.client.is_some() {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            let timeout = Duration::from_millis(self.policy.io_timeout_ms);
            match NetClient::connect_timeout(&self.addr, timeout) {
                Ok(client) => {
                    self.stats.reconnects += 1;
                    self.client = Some(client);
                    return Ok(());
                }
                Err(ConnectError::Shed { retry_after_ms }) => {
                    self.backoff(&mut attempt, Some(retry_after_ms), "connect shed")?;
                }
                Err(ConnectError::TimedOut) => {
                    self.backoff(&mut attempt, None, "connect timed out")?;
                }
                Err(ConnectError::Io(err)) => {
                    self.backoff(&mut attempt, None, &format!("connect failed: {err}"))?;
                }
                Err(ConnectError::Refused { code, message }) => {
                    return Err(RetryError::Refused { code, message });
                }
                Err(ConnectError::Protocol(msg)) => {
                    return Err(RetryError::Protocol(msg));
                }
            }
        }
    }

    /// Account one failed attempt and sleep the backoff for it, or fail
    /// typed once either budget is exhausted. The sleep is
    /// `min(base · 2^attempt, max) + jitter`, raised to the SHED hint when
    /// one was given.
    fn backoff(
        &mut self,
        attempt: &mut u32,
        hint_ms: Option<u32>,
        last: &str,
    ) -> Result<(), RetryError> {
        *attempt += 1;
        if *attempt >= self.policy.max_attempts.max(1) {
            return Err(RetryError::BudgetExhausted {
                attempts: *attempt,
                last: last.to_string(),
            });
        }
        let exp = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << (*attempt - 1).min(32))
            .min(self.policy.max_backoff_ms);
        let jitter = if exp == 0 { 0 } else { splitmix64(&mut self.rng) % (exp / 2 + 1) };
        let mut sleep_ms = exp.saturating_add(jitter);
        if let Some(hint) = hint_ms {
            sleep_ms = sleep_ms.max(u64::from(hint));
        }
        if self.stats.backoff_ms_total.saturating_add(sleep_ms) > self.policy.backoff_budget_ms {
            return Err(RetryError::BudgetExhausted {
                attempts: *attempt,
                last: format!("{last} (backoff budget exceeded)"),
            });
        }
        self.stats.retries += 1;
        self.stats.backoff_ms_total += sleep_ms;
        std::thread::sleep(Duration::from_millis(sleep_ms));
        Ok(())
    }
}

/// One step of the splitmix64 sequence — the standard seeded generator
/// used for jitter so retry schedules reproduce across runs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stream_is_deterministic_per_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..8 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
        let mut c = 43u64;
        assert_ne!(splitmix64(&mut a), splitmix64(&mut c));
    }

    #[test]
    fn backoff_honors_the_shed_hint_and_budgets() {
        let mut client = RetryClient {
            addr: String::new(),
            policy: RetryPolicy {
                max_attempts: 3,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                backoff_budget_ms: 500,
                io_timeout_ms: 0,
                seed: 7,
            },
            rng: 7,
            client: None,
            stats: RetryStats::default(),
        };
        let mut attempt = 0;
        // A 20 ms hint must floor the sleep even though exp backoff is ≤ 3.
        client.backoff(&mut attempt, Some(20), "shed").expect("within budget");
        assert!(client.stats.backoff_ms_total >= 20);
        client.backoff(&mut attempt, None, "shed").expect("within budget");
        client.backoff(&mut attempt, None, "shed").expect_err("attempt cap");
    }

    #[test]
    fn backoff_budget_exhaustion_is_typed() {
        let mut client = RetryClient {
            addr: String::new(),
            policy: RetryPolicy {
                max_attempts: 100,
                base_backoff_ms: 1,
                max_backoff_ms: 1,
                backoff_budget_ms: 30,
                io_timeout_ms: 0,
                seed: 1,
            },
            rng: 1,
            client: None,
            stats: RetryStats::default(),
        };
        let mut attempt = 0;
        let err = loop {
            // Hints larger than the remaining budget trip the typed error.
            if let Err(err) = client.backoff(&mut attempt, Some(25), "shed") {
                break err;
            }
        };
        assert!(matches!(err, RetryError::BudgetExhausted { .. }));
        assert!(client.stats.backoff_ms_total <= 30);
    }
}
