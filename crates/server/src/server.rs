//! The network server: listener + bounded accept queue + fixed worker
//! pool over a [`DkServer`], with graceful drain.
//!
//! ```text
//!    TCP connects                 bounded queue               workers (N)
//!   ┌────────────┐   try_send   ┌───────────────┐   recv   ┌─────────────┐
//!   │ accept loop├─────────────►│ sync_channel  ├─────────►│ handshake + │
//!   │ (1 thread) │   full? shed │ (accept_queue)│          │ request loop│
//!   └────────────┘   + close    └───────────────┘          └─────────────┘
//! ```
//!
//! Every queue in the pipeline is bounded: the accept queue by
//! [`NetConfig::accept_queue`] (overflow sheds the connection with a typed
//! frame, PROTOCOL.md §5), the maintenance backlog by
//! [`NetConfig::staleness_threshold`] (overflow sheds the update). Slow
//! maintenance therefore degrades into typed refusals, never into
//! unbounded memory growth. See OPERATIONS.md for tuning.

use crate::conn::{self, Shared};
use crate::protocol::{self, Frame, ShedReason};
use dkindex_core::{DkIndex, DkServer, ServeError};
use dkindex_graph::DataGraph;
use dkindex_telemetry as telemetry;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs for a [`NetServer`]. Field-by-field tuning guidance is
/// OPERATIONS.md; the defaults suit a loopback bench and small
/// deployments.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Worker threads handling connections (each owns one connection at a
    /// time). `0` is treated as 1.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// server sheds new ones at the door (PROTOCOL.md §5.1 reason 1).
    pub accept_queue: usize,
    /// Visit budget applied to QUERY frames that ask for the default
    /// (budget 0, PROTOCOL.md §3.1).
    pub default_budget: u64,
    /// Hard ceiling a QUERY's requested budget is clamped to.
    pub max_budget: u64,
    /// Maintenance backlog (admitted, unapplied ops) above which UPDATEs
    /// are shed with reason maintenance-lag (PROTOCOL.md §5.1 reason 2).
    pub staleness_threshold: u64,
    /// Grace window during drain in which established connections may
    /// finish pipelined requests (PROTOCOL.md §7).
    pub drain_grace_ms: u64,
    /// Backoff hint written into SHED frames.
    pub retry_after_ms: u32,
    /// Write deadline for the best-effort SHED frame sent to a connection
    /// refused at the door (a stalled peer must not wedge the accept
    /// thread). `0` disables the deadline (blocking write).
    pub shed_write_timeout_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 4,
            accept_queue: 64,
            default_budget: 1_000_000,
            max_budget: u64::MAX,
            staleness_threshold: 256,
            drain_grace_ms: 1_000,
            retry_after_ms: 50,
            shed_write_timeout_ms: 50,
        }
    }
}

/// What a graceful [`NetServer::shutdown`] hands back.
pub struct NetShutdown {
    /// The final index, after every admitted op was applied.
    pub index: DkIndex,
    /// The final data graph.
    pub data: DataGraph,
    /// Wall-clock of the drain: draining flag set → all workers joined.
    pub drain: Duration,
}

/// A running network front-end over a [`DkServer`]. Dropping it without
/// [`NetServer::shutdown`] still joins everything (via the inner
/// `DkServer` drop) but skips the drain bookkeeping; call `shutdown` to
/// get the final state and drain telemetry.
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    server: DkServer,
}

impl NetServer {
    /// Bind `addr` and start serving `server` over it: one accept thread,
    /// `cfg.workers` connection workers. Port 0 binds an ephemeral port —
    /// read it back with [`NetServer::local_addr`].
    pub fn start<A: ToSocketAddrs>(
        server: DkServer,
        addr: A,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Baseline the admission counter at the current epoch's op count so
        // `admitted − ops_applied` is the backlog even when the DkServer
        // had direct submissions before the front-end came up.
        let base = server.handle().epoch().ops_applied();
        let shared = Arc::new(Shared {
            handle: server.handle(),
            admitted: AtomicU64::new(base),
            draining: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            durable: server.is_logged(),
            cfg,
        });
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(shared.cfg.accept_queue.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let worker_shared = Arc::clone(&shared);
            let submitter = server.submitter();
            let join = std::thread::Builder::new()
                .name(format!("dknp-worker-{i}"))
                .spawn(move || worker_loop(&rx, &worker_shared, &submitter))?;
            workers.push(join);
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("dknp-accept".to_string())
            .spawn(move || accept_loop(&listener, &conn_tx, &accept_shared))?;
        Ok(NetServer {
            local_addr,
            shared,
            accept: Some(accept),
            workers,
            server,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying serve layer — test hooks like
    /// `DkServer::pause_maintenance` live there.
    pub fn dk_server(&self) -> &DkServer {
        &self.server
    }

    /// Graceful drain (PROTOCOL.md §7, OPERATIONS.md): stop accepting (new
    /// connects are refused at the socket level), give established
    /// connections the drain grace window (queries still answered, updates
    /// shed with reason draining), join every worker, record
    /// `serve.net.drain_ns`, then stop the maintenance thread after it
    /// applies everything admitted — the returned state reflects every
    /// `UPDATE_OK` ever sent.
    pub fn shutdown(self) -> Result<NetShutdown, ServeError> {
        let NetServer {
            local_addr,
            shared,
            accept,
            workers,
            server,
        } = self;
        let start = Instant::now();
        *shared
            .drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner) =
            Some(start + Duration::from_millis(shared.cfg.drain_grace_ms));
        shared.draining.store(true, Ordering::SeqCst);
        // The accept thread may be parked in accept(); a throwaway
        // self-connection wakes it so it can observe the flag and exit
        // (dropping the listener — from then on connects are refused).
        let _ = TcpStream::connect(local_addr);
        if let Some(join) = accept {
            let _ = join.join();
        }
        for join in workers {
            let _ = join.join();
        }
        let drain = start.elapsed();
        telemetry::metrics::SERVE_NET_DRAIN_NS.record(drain.as_nanos() as u64);
        let (index, data) = server.shutdown()?;
        Ok(NetShutdown { index, data, drain })
    }
}

/// The accept thread: hand sockets to the bounded queue, shed at the door
/// when it is full, exit (dropping the listener and the queue sender) once
/// draining starts.
fn accept_loop(listener: &TcpListener, tx: &mpsc::SyncSender<TcpStream>, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.draining.load(Ordering::SeqCst) {
                    // This is either the self-connect wakeup or a client
                    // racing the drain; both are refused by closing.
                    return;
                }
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => shed_at_door(stream, shared),
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (EMFILE, aborted connection):
                // keep serving.
            }
        }
    }
}

/// Best-effort typed refusal for a connection that never reached a worker
/// (PROTOCOL.md §5.1 reason 1, §5.2): write SHED instead of WELCOME, then
/// close.
fn shed_at_door(mut stream: TcpStream, shared: &Shared) {
    telemetry::metrics::SERVE_NET_CONNECTIONS_SHED.incr();
    if shared.cfg.shed_write_timeout_ms > 0 {
        let timeout = Duration::from_millis(shared.cfg.shed_write_timeout_ms);
        let _ = stream.set_write_timeout(Some(timeout));
    }
    let frame = Frame::Shed {
        reason: ShedReason::QueueFull,
        pending: 0,
        retry_after_ms: shared.cfg.retry_after_ms,
    };
    let _ = stream.write_all(&protocol::encode(&frame));
}

/// A worker: pull connections off the shared queue until the accept thread
/// drops the sender, serving each to completion.
fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    shared: &Shared,
    submitter: &dkindex_core::Submitter,
) {
    loop {
        // Holding the lock across recv serializes idle workers on the
        // mutex instead of the channel — same semantics, and the lock is
        // released before the (long) connection handling starts.
        let next = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            // analyze: allow(guard-discipline) — intentional: the mutex IS
            // the work-distribution queue; only idle workers block here,
            // and the guard drops before connection handling starts.
            guard.recv()
        };
        match next {
            Ok(stream) => conn::serve_connection(stream, shared, submitter),
            Err(_) => return,
        }
    }
}
