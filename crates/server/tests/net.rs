//! End-to-end tests for the network serve front-end over a real loopback
//! socket:
//!
//! * handshake + query/update/ping/stats round-trips, including the
//!   bad-query and budget-exhausted error paths;
//! * **overload**: with maintenance deterministically paused, exactly
//!   `staleness_threshold` updates are admitted and every further one gets
//!   the typed SHED(maintenance-lag) response — never queued unboundedly —
//!   and after resume the final state is byte-identical to the serial
//!   oracle over exactly the admitted prefix;
//! * **drain**: during graceful shutdown an established connection still
//!   gets its in-flight query answered (and updates shed with reason
//!   draining) while brand-new TCP connects are refused.

use dkindex_core::{apply_serial, snapshot_bytes, DkIndex, DkServer, Requirements, ServeConfig};
use dkindex_datagen::{random_graph, RandomGraphConfig};
use dkindex_graph::DataGraph;
use dkindex_server::{Frame, NetClient, NetConfig, NetServer, ShedReason};
use std::time::{Duration, Instant};

fn fixture_graph() -> DataGraph {
    random_graph(&RandomGraphConfig {
        nodes: 220,
        labels: 5,
        reference_edges: 24,
        max_fanout: 6,
        seed: 0xD5EE,
    })
}

fn start_net(cfg: NetConfig) -> (NetServer, DataGraph, DkIndex) {
    let g = fixture_graph();
    let dk = DkIndex::build(&g, Requirements::uniform(2));
    let server = DkServer::start(
        g.clone(),
        dk.clone(),
        ServeConfig {
            max_batch: 16,
            threads: 1,
            ..ServeConfig::default()
        },
    );
    let net = NetServer::start(server, "127.0.0.1:0", cfg).expect("bind loopback");
    (net, g, dk)
}

#[test]
fn handshake_query_update_ping_stats_round_trip() {
    let (net, g, dk) = start_net(NetConfig::default());
    let addr = net.local_addr();

    let mut client = NetClient::connect(addr).expect("connect + handshake");
    assert_eq!(client.epoch_at_welcome(), 0);

    match client.ping().unwrap() {
        Frame::Pong { epoch } => assert_eq!(epoch, 0),
        other => panic!("expected PONG, got {other:?}"),
    }

    // A default-budget query answers exactly like a local evaluation.
    let reply = client.query("l1.l2", 0).unwrap();
    match reply {
        Frame::Answer {
            epoch, match_count, ..
        } => {
            assert_eq!(epoch, 0);
            let local = dkindex_core::evaluate_on_data(&g, &dkindex_pathexpr::parse("l1.l2").unwrap()).0;
            assert_eq!(match_count as usize, local.len());
        }
        other => panic!("expected ANSWER, got {other:?}"),
    }

    // Unparseable query text → typed bad-query error, connection stays up.
    match client.query("l1..", 0).unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, dkindex_server::ErrorCode::BadQuery),
        other => panic!("expected ERROR, got {other:?}"),
    }

    // A budget of 1 visit cannot complete any evaluation on this graph.
    match client.query("l1.l2.l3", 1).unwrap() {
        Frame::Error { code, .. } => {
            assert_eq!(code, dkindex_server::ErrorCode::BudgetExhausted);
        }
        other => panic!("expected budget ERROR, got {other:?}"),
    }

    // An update is admitted with backlog 1 and becomes visible post-flush.
    match client.update(3, 9).unwrap() {
        Frame::UpdateOk { pending } => assert_eq!(pending, 1),
        other => panic!("expected UPDATE_OK, got {other:?}"),
    }
    net.dk_server().flush().unwrap();
    match client.stats().unwrap() {
        Frame::StatsOk { text } => {
            assert!(text.contains("pending=0"), "post-flush stats: {text}");
            assert!(text.contains("ops_applied=1"), "stats: {text}");
        }
        other => panic!("expected STATS_OK, got {other:?}"),
    }
    match client.ping().unwrap() {
        Frame::Pong { epoch } => assert!(epoch >= 1, "update must have published"),
        other => panic!("expected PONG, got {other:?}"),
    }

    drop(client);
    let shutdown = net.shutdown().unwrap();
    // The shutdown state reflects the single admitted op, byte-identically
    // to the serial oracle.
    let (mut odk, mut og) = (dk, g);
    apply_serial(
        &mut odk,
        &mut og,
        &[dkindex_core::ServeOp::AddEdge {
            from: dkindex_graph::NodeId::from_index(3),
            to: dkindex_graph::NodeId::from_index(9),
        }],
    );
    assert_eq!(
        snapshot_bytes(&shutdown.index, &shutdown.data),
        snapshot_bytes(&odk, &og),
        "network path diverged from serial replay"
    );
}

#[test]
fn overload_sheds_typed_and_stays_byte_identical() {
    const THRESHOLD: u64 = 8;
    const EXTRA: u64 = 5;
    let (net, g, dk) = start_net(NetConfig {
        staleness_threshold: THRESHOLD,
        ..NetConfig::default()
    });
    let mut client = NetClient::connect(net.local_addr()).expect("connect");

    // Deterministically stall maintenance: once this returns, nothing
    // submitted afterwards is applied until the gate drops.
    let gate = net.dk_server().pause_maintenance().unwrap();

    let mut admitted: Vec<(u64, u64)> = Vec::new();
    let mut sheds = 0u64;
    for i in 0..(THRESHOLD + EXTRA) {
        let (from, to) = (2 + i, 3 + i);
        match client.update(from, to).unwrap() {
            Frame::UpdateOk { pending } => {
                admitted.push((from, to));
                assert_eq!(u64::from(pending), admitted.len() as u64);
            }
            Frame::Shed {
                reason,
                pending,
                retry_after_ms,
            } => {
                assert_eq!(reason, ShedReason::MaintenanceLag);
                assert_eq!(u64::from(pending), THRESHOLD, "backlog at shed time");
                assert!(retry_after_ms > 0);
                sheds += 1;
            }
            other => panic!("expected UPDATE_OK or SHED, got {other:?}"),
        }
    }
    assert_eq!(
        admitted.len() as u64,
        THRESHOLD,
        "admission must stop exactly at the staleness threshold"
    );
    assert_eq!(sheds, EXTRA, "every overflow update gets a typed SHED");

    // Queries are still served while updates shed (reads don't lag).
    match client.query("l1", 0).unwrap() {
        Frame::Answer { epoch, .. } => assert_eq!(epoch, 0),
        other => panic!("expected ANSWER under overload, got {other:?}"),
    }

    // Resume; once the backlog is applied, updates are admitted again.
    drop(gate);
    net.dk_server().flush().unwrap();
    match client.update(100, 101).unwrap() {
        Frame::UpdateOk { pending } => assert_eq!(pending, 1),
        other => panic!("expected post-resume UPDATE_OK, got {other:?}"),
    }
    admitted.push((100, 101));

    drop(client);
    let shutdown = net.shutdown().unwrap();
    let (mut odk, mut og) = (dk, g);
    let ops: Vec<_> = admitted
        .iter()
        .map(|&(from, to)| dkindex_core::ServeOp::AddEdge {
            from: dkindex_graph::NodeId::from_index(from as usize),
            to: dkindex_graph::NodeId::from_index(to as usize),
        })
        .collect();
    apply_serial(&mut odk, &mut og, &ops);
    assert_eq!(
        snapshot_bytes(&shutdown.index, &shutdown.data),
        snapshot_bytes(&odk, &og),
        "admitted prefix must replay byte-identically"
    );
}

#[test]
fn drain_answers_in_flight_and_refuses_new_connects() {
    let (net, _g, _dk) = start_net(NetConfig {
        drain_grace_ms: 5_000,
        ..NetConfig::default()
    });
    let addr = net.local_addr();
    let mut established = NetClient::connect(addr).expect("connect before drain");

    let shutdown = std::thread::spawn(move || net.shutdown());

    // New TCP connects must start being refused once the listener drops.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match std::net::TcpStream::connect(addr) {
            Err(_) => break,
            Ok(_) => {
                assert!(
                    Instant::now() < deadline,
                    "connects were still accepted 10 s into the drain"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }

    // The established connection is inside the grace window: its query is
    // still answered...
    match established.query("l1", 0).unwrap() {
        Frame::Answer { .. } => {}
        other => panic!("expected ANSWER during drain, got {other:?}"),
    }
    // ...while updates are refused with the typed draining shed.
    match established.update(3, 9).unwrap() {
        Frame::Shed { reason, .. } => assert_eq!(reason, ShedReason::Draining),
        other => panic!("expected SHED(draining), got {other:?}"),
    }

    // Closing the last connection lets the drain finish well inside the
    // grace window.
    drop(established);
    let result = shutdown.join().expect("shutdown thread").unwrap();
    assert!(
        result.drain < Duration::from_secs(10),
        "drain took {:?}",
        result.drain
    );
}
