//! Golden wire-format tests: every DKNP frame type encoded against
//! hand-written byte vectors, each pinned to the exact section of
//! docs/PROTOCOL.md that specifies it. If any of these fail, either the
//! codec or the document changed — and a byte-layout change is a protocol
//! version bump (PROTOCOL.md §2.2), not a patch.

use dkindex_server::protocol::{
    check_length, decode_body, encode, DecodeError, MAX_ANSWER_IDS, MAX_FRAME, VERSION,
};
use dkindex_server::{ErrorCode, Frame, ShedReason};

/// Encode, compare against the golden bytes, then decode the body back
/// and require the identical frame (PROTOCOL.md §1: frames are
/// `u32 LE length | u8 opcode | payload`).
fn golden(frame: Frame, expected: &[u8]) {
    let bytes = encode(&frame);
    assert_eq!(bytes, expected, "encoding of {frame:?}");
    let (header, body) = expected.split_at(4);
    let length = u32::from_le_bytes(header.try_into().unwrap());
    assert_eq!(length as usize, body.len(), "length counts opcode + payload");
    assert_eq!(check_length(length).unwrap(), body.len());
    assert_eq!(decode_body(body).unwrap(), frame, "decode round-trip");
}

/// PROTOCOL.md §2.1 — HELLO is opcode 0x01: magic "DKNP" then version
/// u16 LE.
#[test]
fn hello_golden_bytes_protocol_2_1() {
    golden(
        Frame::Hello { version: VERSION },
        &[
            7, 0, 0, 0, // length = opcode + 6 payload bytes
            0x01, // opcode HELLO
            0x44, 0x4B, 0x4E, 0x50, // magic "DKNP"
            0x01, 0x00, // version 1, little-endian
        ],
    );
}

/// PROTOCOL.md §2.1 — WELCOME is opcode 0x02: version u16 LE then the
/// current epoch u64 LE.
#[test]
fn welcome_golden_bytes_protocol_2_1() {
    golden(
        Frame::Welcome {
            version: 1,
            epoch: 0x0102030405060708,
        },
        &[
            11, 0, 0, 0, // length
            0x02, // opcode WELCOME
            0x01, 0x00, // version
            0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // epoch LE
        ],
    );
}

/// PROTOCOL.md §3.1 — QUERY is opcode 0x10: budget u32 LE (0 = server
/// default) then UTF-8 query text to the end of the frame.
#[test]
fn query_golden_bytes_protocol_3_1() {
    golden(
        Frame::Query {
            budget: 500,
            text: "l1.l2".to_string(),
        },
        &[
            10, 0, 0, 0, // length
            0x10, // opcode QUERY
            0xF4, 0x01, 0x00, 0x00, // budget 500 LE
            b'l', b'1', b'.', b'l', b'2', // query text
        ],
    );
}

/// PROTOCOL.md §3.2 — UPDATE is opcode 0x11: from u64 LE then to u64 LE.
#[test]
fn update_golden_bytes_protocol_3_2() {
    golden(
        Frame::Update { from: 3, to: 260 },
        &[
            17, 0, 0, 0, // length
            0x11, // opcode UPDATE
            3, 0, 0, 0, 0, 0, 0, 0, // from
            4, 1, 0, 0, 0, 0, 0, 0, // to = 260 LE
        ],
    );
}

/// PROTOCOL.md §3.3 — PING is opcode 0x12 with an empty payload: the
/// smallest legal frame, length 1 (§1).
#[test]
fn ping_golden_bytes_protocol_3_3() {
    golden(Frame::Ping, &[1, 0, 0, 0, 0x12]);
}

/// PROTOCOL.md §3.4 — STATS is opcode 0x13 with an empty payload.
#[test]
fn stats_golden_bytes_protocol_3_4() {
    golden(Frame::Stats, &[1, 0, 0, 0, 0x13]);
}

/// PROTOCOL.md §4.1 — ANSWER is opcode 0x20: epoch, index_visits,
/// data_visits (u64 LE each), validated u8, match_count u32 LE, then
/// min(match_count, 32) node ids u64 LE.
#[test]
fn answer_golden_bytes_protocol_4_1() {
    golden(
        Frame::Answer {
            epoch: 2,
            index_visits: 10,
            data_visits: 4,
            validated: true,
            match_count: 2,
            ids: vec![7, 9],
        },
        &[
            46, 0, 0, 0, // length = 1 + 8 + 8 + 8 + 1 + 4 + 2*8
            0x20, // opcode ANSWER
            2, 0, 0, 0, 0, 0, 0, 0, // epoch
            10, 0, 0, 0, 0, 0, 0, 0, // index_visits
            4, 0, 0, 0, 0, 0, 0, 0, // data_visits
            1, // validated
            2, 0, 0, 0, // match_count
            7, 0, 0, 0, 0, 0, 0, 0, // id 7
            9, 0, 0, 0, 0, 0, 0, 0, // id 9
        ],
    );
}

/// PROTOCOL.md §4.1 — the id list is capped at 32 entries while
/// match_count reports the true total: an answer with 40 matches carries
/// exactly 32 ids and decodes back with match_count 40.
#[test]
fn answer_id_cap_protocol_4_1() {
    let ids: Vec<u64> = (0..40).collect();
    let frame = Frame::Answer {
        epoch: 1,
        index_visits: 1,
        data_visits: 0,
        validated: false,
        match_count: 40,
        ids,
    };
    let bytes = encode(&frame);
    // length = 1 opcode + 29 fixed + 32 * 8 ids
    assert_eq!(bytes.len(), 4 + 1 + 29 + MAX_ANSWER_IDS * 8);
    let decoded = decode_body(&bytes[4..]).unwrap();
    match decoded {
        Frame::Answer {
            match_count, ids, ..
        } => {
            assert_eq!(match_count, 40);
            assert_eq!(ids, (0..32).collect::<Vec<u64>>());
        }
        other => panic!("decoded {other:?}"),
    }
}

/// PROTOCOL.md §4.2 — UPDATE_OK is opcode 0x21: pending u32 LE, the
/// backlog including the admitted op.
#[test]
fn update_ok_golden_bytes_protocol_4_2() {
    golden(
        Frame::UpdateOk { pending: 3 },
        &[5, 0, 0, 0, 0x21, 3, 0, 0, 0],
    );
}

/// PROTOCOL.md §4.3 — PONG is opcode 0x22: the current epoch u64 LE.
#[test]
fn pong_golden_bytes_protocol_4_3() {
    golden(
        Frame::Pong { epoch: 6 },
        &[9, 0, 0, 0, 0x22, 6, 0, 0, 0, 0, 0, 0, 0],
    );
}

/// PROTOCOL.md §4.4 — STATS_OK is opcode 0x23: UTF-8 `key=value` lines,
/// informational only.
#[test]
fn stats_ok_golden_bytes_protocol_4_4() {
    golden(
        Frame::StatsOk {
            text: "epoch=1\n".to_string(),
        },
        &[
            9, 0, 0, 0, 0x23, b'e', b'p', b'o', b'c', b'h', b'=', b'1', b'\n',
        ],
    );
}

/// PROTOCOL.md §5.1 — SHED is opcode 0x2E: reason u8 (1 queue-full,
/// 2 maintenance-lag, 3 draining), pending u32 LE, retry_after_ms u32 LE.
#[test]
fn shed_golden_bytes_protocol_5_1() {
    golden(
        Frame::Shed {
            reason: ShedReason::MaintenanceLag,
            pending: 7,
            retry_after_ms: 50,
        },
        &[
            10, 0, 0, 0, // length
            0x2E, // opcode SHED
            2, // reason maintenance-lag
            7, 0, 0, 0, // pending
            50, 0, 0, 0, // retry_after_ms
        ],
    );
    // All three reason bytes from the §5.1 table round-trip.
    for (reason, byte) in [
        (ShedReason::QueueFull, 1u8),
        (ShedReason::MaintenanceLag, 2),
        (ShedReason::Draining, 3),
    ] {
        assert_eq!(reason.code(), byte);
    }
}

/// PROTOCOL.md §6 — ERROR is opcode 0x2F: code u8 then UTF-8 message.
/// Every code byte matches the §6 table.
#[test]
fn error_golden_bytes_protocol_6() {
    golden(
        Frame::Error {
            code: ErrorCode::BadQuery,
            message: "boom".to_string(),
        },
        &[6, 0, 0, 0, 0x2F, 3, b'b', b'o', b'o', b'm'],
    );
    for (code, byte) in [
        (ErrorCode::Malformed, 1u8),
        (ErrorCode::UnsupportedVersion, 2),
        (ErrorCode::BadQuery, 3),
        (ErrorCode::BudgetExhausted, 4),
        (ErrorCode::Unavailable, 5),
    ] {
        assert_eq!(code.code(), byte);
    }
}

/// PROTOCOL.md §1.1 — length 0 and lengths above 1 MiB are malformed
/// before any body is buffered; everything in between is accepted.
#[test]
fn length_bounds_protocol_1_1() {
    assert_eq!(check_length(0), Err(DecodeError::BadLength(0)));
    assert_eq!(check_length(1), Ok(1));
    assert_eq!(check_length(MAX_FRAME), Ok(MAX_FRAME as usize));
    assert_eq!(
        check_length(MAX_FRAME + 1),
        Err(DecodeError::BadLength(MAX_FRAME + 1))
    );
}

/// PROTOCOL.md §1 + §6 — payload size mismatches are malformed: a frame
/// whose payload is shorter than its opcode demands is truncated, one
/// with extra bytes after a fixed-size layout carries trailing bytes, and
/// an unassigned opcode byte is unknown.
#[test]
fn malformed_bodies_protocol_1_and_6() {
    // PONG (§4.3) wants 8 payload bytes; 4 is truncated.
    assert_eq!(
        decode_body(&[0x22, 1, 2, 3, 4]),
        Err(DecodeError::Truncated)
    );
    // PING (§3.3) wants none; one extra is trailing.
    assert_eq!(decode_body(&[0x12, 0]), Err(DecodeError::TrailingBytes));
    // 0x7F is not assigned by §2–§6.
    assert_eq!(decode_body(&[0x7F]), Err(DecodeError::UnknownOpcode(0x7F)));
    // HELLO (§2.1) with the wrong magic is rejected before the version.
    assert_eq!(
        decode_body(&[0x01, b'N', b'O', b'P', b'E', 1, 0]),
        Err(DecodeError::BadMagic)
    );
    // SHED (§5.1) reason 9 is outside the table.
    assert_eq!(
        decode_body(&[0x2E, 9, 0, 0, 0, 0, 0, 0, 0, 0]),
        Err(DecodeError::BadField)
    );
    // ERROR (§6) code 0 is outside the table.
    assert_eq!(decode_body(&[0x2F, 0]), Err(DecodeError::BadField));
    // An empty body has no opcode (§1: length ≥ 1).
    assert_eq!(decode_body(&[]), Err(DecodeError::Truncated));
}
