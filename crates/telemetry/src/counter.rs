//! Monotone atomic event counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named, monotonically increasing `u64` counter.
///
/// `const`-constructible so every workspace metric is a `static` in
/// [`crate::metrics`] — no registration step, no allocation, no locks.
/// [`add`](Counter::add) is a no-op while the global recorder is off.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A fresh zero counter. `name` is the stable identifier reported in
    /// snapshots (`"partition.rounds"`, `"eval.queries"`, ...).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` to the counter if the recorder is enabled; no-op otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one if the recorder is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (readable regardless of the recorder state).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the counter.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::recorder_lock;

    static TEST_COUNTER: Counter = Counter::new("test.counter");

    #[test]
    fn add_and_incr_accumulate_only_when_enabled() {
        let _guard = recorder_lock();
        TEST_COUNTER.reset();
        crate::disable();
        TEST_COUNTER.add(10);
        TEST_COUNTER.incr();
        assert_eq!(TEST_COUNTER.get(), 0);
        crate::enable();
        TEST_COUNTER.add(10);
        TEST_COUNTER.incr();
        crate::disable();
        assert_eq!(TEST_COUNTER.get(), 11);
        TEST_COUNTER.reset();
        assert_eq!(TEST_COUNTER.get(), 0);
    }

    #[test]
    fn name_round_trips() {
        assert_eq!(TEST_COUNTER.name(), "test.counter");
    }
}
