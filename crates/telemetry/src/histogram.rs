//! Fixed-size log2-bucket histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 0 holds the value `0`, bucket `i` (1 ≤ i ≤ 64)
/// holds values in `[2^(i-1), 2^i - 1]` — together they cover all of `u64`.
pub const BUCKETS: usize = 65;

/// What a histogram's recorded values mean, for rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless counts (nodes visited, blocks, splits, ...).
    Count,
    /// Durations in nanoseconds (span timers).
    Nanos,
}

impl Unit {
    /// The snapshot/JSON identifier of the unit.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Nanos => "ns",
        }
    }
}

/// A named log2-bucket histogram over `u64` values.
///
/// Like [`crate::Counter`], it is `const`-constructible (so metrics are
/// `static`s), lock-free (per-bucket `AtomicU64`s), and
/// [`record`](Histogram::record) is a no-op while the recorder is off.
/// Alongside the buckets it tracks `sum`, `count`, `min` and `max`, so
/// snapshots can report both the distribution shape and exact totals.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    unit: Unit,
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// The bucket a value lands in: 0 for 0, `ilog2(v) + 1` otherwise.
#[inline]
pub(crate) fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        value.ilog2() as usize + 1
    }
}

/// The largest value bucket `i` can hold (`0`, then `2^i - 1`).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// A fresh empty histogram. `name` is the stable snapshot identifier.
    pub const fn new(name: &'static str, unit: Unit) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            unit,
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unit recorded values are measured in.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Record one observation if the recorder is enabled; no-op otherwise.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::is_enabled() {
            return;
        }
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// The count in bucket `i` (see [`BUCKETS`] for the bucket layout).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let n = self.bucket(i);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect()
    }

    /// Upper bound of the bucket where the cumulative count first reaches
    /// `q` (0.0–1.0) of all observations — a log2-resolution quantile
    /// estimate. `None` if the histogram is empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            cumulative += self.bucket(i);
            if cumulative >= target {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Clear every bucket and the sum/count/min/max trackers.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::recorder_lock;

    static TEST_HIST: Histogram = Histogram::new("test.hist", Unit::Count);

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_tracks_sum_count_min_max_and_buckets() {
        let _guard = recorder_lock();
        TEST_HIST.reset();
        crate::enable();
        for v in [0, 1, 2, 3, 9, 9] {
            TEST_HIST.record(v);
        }
        crate::disable();
        assert_eq!(TEST_HIST.count(), 6);
        assert_eq!(TEST_HIST.sum(), 24);
        assert_eq!(TEST_HIST.min(), Some(0));
        assert_eq!(TEST_HIST.max(), Some(9));
        assert_eq!(TEST_HIST.bucket(0), 1); // value 0
        assert_eq!(TEST_HIST.bucket(1), 1); // value 1
        assert_eq!(TEST_HIST.bucket(2), 2); // values 2, 3
        assert_eq!(TEST_HIST.bucket(4), 2); // the two 9s
        assert_eq!(
            TEST_HIST.nonzero_buckets(),
            vec![(0, 1), (1, 1), (3, 2), (15, 2)]
        );
        TEST_HIST.reset();
        assert_eq!(TEST_HIST.count(), 0);
        assert_eq!(TEST_HIST.min(), None);
        assert_eq!(TEST_HIST.max(), None);
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let _guard = recorder_lock();
        TEST_HIST.reset();
        crate::enable();
        for _ in 0..99 {
            TEST_HIST.record(1);
        }
        TEST_HIST.record(1000);
        crate::disable();
        assert_eq!(TEST_HIST.quantile_upper_bound(0.5), Some(1));
        assert_eq!(TEST_HIST.quantile_upper_bound(0.99), Some(1));
        assert_eq!(TEST_HIST.quantile_upper_bound(1.0), Some(1023));
        TEST_HIST.reset();
        assert_eq!(TEST_HIST.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = recorder_lock();
        TEST_HIST.reset();
        crate::disable();
        TEST_HIST.record(5);
        assert_eq!(TEST_HIST.count(), 0);
    }
}
