//! # dkindex-telemetry
//!
//! Zero-dependency observability for the D(k)-index hot paths. The paper's
//! central claim (§6) is that the D(k)-index *adapts* — its k-values,
//! partition sizes and query costs shift with the workload — and this crate
//! makes that adaptation visible while it happens instead of only in
//! end-of-run aggregates:
//!
//! * [`Counter`] — a monotone `AtomicU64` event counter.
//! * [`Histogram`] — a fixed-size log2-bucket histogram (65 buckets covering
//!   the whole `u64` range) with sum / count / min / max, used both for
//!   value distributions (query visit counts, blocks per round) and for
//!   span durations in nanoseconds.
//! * [`Span`] — an RAII timer: construct at the top of a scope, the elapsed
//!   nanoseconds are recorded into a [`Histogram`] on drop.
//! * a **global recorder switch** ([`enable`] / [`disable`] / [`reset`]):
//!   telemetry is *off by default*; every record operation first checks one
//!   relaxed atomic load and is a no-op when the recorder is off, so
//!   instrumented hot paths cost (almost) nothing unless observability was
//!   asked for. Recording only ever *reads* the values it is handed, so
//!   enabling the recorder can never change matches, visit counts or
//!   partitions — the test suite and `reproduce bench-smoke` assert this
//!   byte-for-byte.
//! * [`metrics`] — the workspace-wide registry of every metric: NFA
//!   evaluation and validation walks (`dkindex-pathexpr`), signature
//!   interning and regroup rounds (`dkindex-partition`'s `RefineEngine`),
//!   D(k) construction / promotion / demotion / edge updates and the
//!   adaptive tuning loop (`dkindex-core`), update-stream generation
//!   (`dkindex-workload`), and the build → query → adapt phase spans used
//!   by the CLI and the bench harness.
//! * [`snapshot`] / [`Snapshot`] — a consistent-enough point-in-time read
//!   of every registered metric, renderable as JSON (`METRICS.json`,
//!   `dkindex --metrics <path>`) or as a human-readable text report
//!   (`dkindex stats`).
//!
//! ## Example
//!
//! ```
//! use dkindex_telemetry as telemetry;
//!
//! telemetry::reset();
//! telemetry::enable();
//! telemetry::metrics::EVAL_QUERIES.add(1);
//! telemetry::metrics::EVAL_VISITS_PER_QUERY.record(42);
//! {
//!     let _span = telemetry::Span::start(&telemetry::metrics::PHASE_QUERY_NS);
//!     // ... evaluate ...
//! } // elapsed nanoseconds recorded here
//! telemetry::disable();
//!
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("eval.queries"), Some(1));
//! assert!(snap.to_json().contains("\"eval.visits_per_query\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
pub mod metrics;
mod snapshot;
mod span;

pub use counter::Counter;
pub use histogram::{Histogram, Unit, BUCKETS};
pub use snapshot::{CounterSnapshot, HistogramSnapshot, Snapshot};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};

/// The global recorder switch. Off by default; every record operation checks
/// this with one `Relaxed` load before doing any work.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is the recorder currently on?
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the recorder on: subsequent counter adds, histogram records and span
/// timings take effect.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the recorder off: subsequent record operations become no-ops.
/// Already-recorded values are kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Zero every registered metric. Does not change the on/off state.
pub fn reset() {
    for c in metrics::counters() {
        c.reset();
    }
    for h in metrics::histograms() {
        h.reset();
    }
}

/// Read every registered metric into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    Snapshot::collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    //! The recorder switch is process-global and `cargo test` runs tests on
    //! multiple threads, so tests that enable/disable/reset serialize on this
    //! lock.
    use std::sync::{Mutex, MutexGuard, OnceLock};

    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();

    pub fn recorder_lock() -> MutexGuard<'static, ()> {
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_starts_disabled_and_toggles() {
        let _guard = test_support::recorder_lock();
        disable();
        assert!(!is_enabled());
        enable();
        assert!(is_enabled());
        disable();
        assert!(!is_enabled());
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _guard = test_support::recorder_lock();
        disable();
        reset();
        metrics::EVAL_QUERIES.add(5);
        metrics::EVAL_VISITS_PER_QUERY.record(100);
        assert_eq!(metrics::EVAL_QUERIES.get(), 0);
        assert_eq!(metrics::EVAL_VISITS_PER_QUERY.count(), 0);
    }

    #[test]
    fn enabled_recorder_accumulates_and_reset_clears() {
        let _guard = test_support::recorder_lock();
        reset();
        enable();
        metrics::EVAL_QUERIES.add(2);
        metrics::EVAL_QUERIES.add(3);
        metrics::EVAL_VISITS_PER_QUERY.record(7);
        disable();
        assert_eq!(metrics::EVAL_QUERIES.get(), 5);
        assert_eq!(metrics::EVAL_VISITS_PER_QUERY.count(), 1);
        assert_eq!(metrics::EVAL_VISITS_PER_QUERY.sum(), 7);
        reset();
        assert_eq!(metrics::EVAL_QUERIES.get(), 0);
        assert_eq!(metrics::EVAL_VISITS_PER_QUERY.count(), 0);
    }

    #[test]
    fn concurrent_increments_from_scoped_workers_sum_exactly() {
        let _guard = test_support::recorder_lock();
        reset();
        enable();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        metrics::PATHEXPR_ACTIVATIONS.add(1);
                        metrics::PATHEXPR_VISITS_PER_EVAL.record(t as u64 * PER_THREAD + i);
                    }
                });
            }
        });
        disable();
        let expected = THREADS as u64 * PER_THREAD;
        assert_eq!(metrics::PATHEXPR_ACTIVATIONS.get(), expected);
        assert_eq!(metrics::PATHEXPR_VISITS_PER_EVAL.count(), expected);
        reset();
    }

    #[test]
    fn snapshot_names_are_unique() {
        let mut names: Vec<&str> = metrics::counters().iter().map(|c| c.name()).collect();
        names.extend(metrics::histograms().iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name registered");
    }
}
