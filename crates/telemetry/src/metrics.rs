//! The workspace-wide metric registry.
//!
//! Every metric recorded anywhere in the D(k)-index workspace is a `static`
//! defined here, grouped by the crate that records it. Centralizing the
//! definitions keeps snapshotting trivial (one flat list per kind, no
//! runtime registration) and makes the full observable surface reviewable
//! in one file. Naming convention: `<area>.<event>`, durations end in
//! `_ns`.

use crate::{Counter, Histogram, Unit};

// ---- dkindex-pathexpr: NFA evaluation and validation walks --------------

/// Forward NFA evaluations performed (`evaluate_with`).
pub static PATHEXPR_EVALUATIONS: Counter = Counter::new("pathexpr.evaluations");
/// Total `(state, node)` activations across forward evaluations — the
/// paper's §6.1 "nodes visited" cost, summed.
pub static PATHEXPR_ACTIVATIONS: Counter = Counter::new("pathexpr.activations");
/// Backward validation walks performed (`matches_ending_at_with`).
pub static PATHEXPR_VALIDATION_WALKS: Counter = Counter::new("pathexpr.validation_walks");
/// Total activations charged during backward validation walks.
pub static PATHEXPR_VALIDATION_ACTIVATIONS: Counter =
    Counter::new("pathexpr.validation_activations");
/// Distribution of per-evaluation visit counts (forward evaluations).
pub static PATHEXPR_VISITS_PER_EVAL: Histogram =
    Histogram::new("pathexpr.visits_per_eval", Unit::Count);

// ---- dkindex-partition: RefineEngine rounds ------------------------------

/// Refinement rounds executed by `RefineEngine`.
pub static PARTITION_ROUNDS: Counter = Counter::new("partition.rounds");
/// Rounds that actually split at least one block.
pub static PARTITION_ROUNDS_CHANGED: Counter = Counter::new("partition.rounds_changed");
/// Nodes whose signature was computed (i.e. not skipped by a selective
/// round) summed over all rounds.
pub static PARTITION_NODES_REFINED: Counter = Counter::new("partition.nodes_refined");
/// Distinct signatures interned, summed over all rounds.
pub static PARTITION_SYMBOLS_INTERNED: Counter = Counter::new("partition.symbols_interned");
/// Distribution of block counts after each round — the index size
/// trajectory during construction.
pub static PARTITION_BLOCKS_PER_ROUND: Histogram =
    Histogram::new("partition.blocks_per_round", Unit::Count);
/// Wall-clock per refinement round.
pub static PARTITION_ROUND_NS: Histogram = Histogram::new("partition.round_ns", Unit::Nanos);

// ---- dkindex-core: index-level query evaluation (§6.1) -------------------

/// Queries evaluated through `IndexEvaluator::evaluate`.
pub static EVAL_QUERIES: Counter = Counter::new("eval.queries");
/// Index-graph activations charged across all queries.
pub static EVAL_INDEX_VISITS: Counter = Counter::new("eval.index_visits");
/// Data-graph activations charged during validation across all queries.
pub static EVAL_DATA_VISITS: Counter = Counter::new("eval.data_visits");
/// Matched index nodes answered soundly (whole extent free, no validation).
pub static EVAL_SOUND_EXTENTS: Counter = Counter::new("eval.sound_extents");
/// Queries that needed the validation process for at least one match.
pub static EVAL_VALIDATED_QUERIES: Counter = Counter::new("eval.validated_queries");
/// Validation verdicts replayed from the evaluator's memo instead of
/// re-walking the data graph.
pub static EVAL_MEMO_HITS: Counter = Counter::new("eval.memo_hits");
/// Bounded queries aborted because their visit budget ran out.
pub static EVAL_ABORTED_QUERIES: Counter = Counter::new("eval.aborted_queries");
/// Distribution of per-query total visit counts (index + data) — the
/// paper's cost-model Y axis as a histogram.
pub static EVAL_VISITS_PER_QUERY: Histogram =
    Histogram::new("eval.visits_per_query", Unit::Count);
/// Wall-clock per query (evaluation + validation).
pub static EVAL_QUERY_NS: Histogram = Histogram::new("eval.query_ns", Unit::Nanos);

// ---- dkindex-core: durability (snapshots, WAL, audit, recovery) ----------

/// Versioned snapshots written (`core::snapshot`).
pub static STORE_SNAPSHOT_WRITES: Counter = Counter::new("store.snapshot_writes");
/// Versioned snapshots loaded successfully.
pub static STORE_SNAPSHOT_LOADS: Counter = Counter::new("store.snapshot_loads");
/// Section CRC mismatches detected while loading snapshots.
pub static STORE_CRC_FAILURES: Counter = Counter::new("store.crc_failures");
/// WAL records appended (`core::wal`).
pub static WAL_RECORDS_APPENDED: Counter = Counter::new("wal.records_appended");
/// WAL records replayed onto an index.
pub static WAL_RECORDS_REPLAYED: Counter = Counter::new("wal.records_replayed");
/// WAL streams that ended in a torn (incomplete) trailing record — the
/// expected signature of a crash mid-append, recovered by dropping the tail.
pub static WAL_TORN_TAILS: Counter = Counter::new("wal.torn_tails");
/// Group commits: batches of WAL records fenced and fsynced as one unit
/// (one per maintenance batch when serving with `--wal`).
pub static WAL_GROUP_COMMITS: Counter = Counter::new("wal.group_commits");
/// WAL syncs that failed. After one, the writer is abandoned: a failed
/// fsync is never retried (the fsyncgate rule), updates get typed errors.
pub static WAL_SYNC_FAILURES: Counter = Counter::new("wal.sync_failures");
/// Invariant audit passes executed (`core::audit`).
pub static AUDIT_RUNS: Counter = Counter::new("audit.runs");
/// Individual invariant violations found across all audits.
pub static AUDIT_VIOLATIONS: Counter = Counter::new("audit.violations");
/// Recoveries that fell back to rebuilding the index from the data graph.
pub static AUDIT_REBUILDS: Counter = Counter::new("audit.rebuilds");
/// Wall-clock per full audit pass.
pub static AUDIT_NS: Histogram = Histogram::new("audit.audit_ns", Unit::Nanos);
/// Wall-clock per WAL replay.
pub static WAL_REPLAY_NS: Histogram = Histogram::new("wal.replay_ns", Unit::Nanos);
/// Wall-clock per WAL group commit (encode + write + fence + fsync).
pub static WAL_GROUP_COMMIT_NS: Histogram =
    Histogram::new("wal.group_commit_ns", Unit::Nanos);

// ---- dkindex-core: D(k) construction and maintenance (§4–§5) -------------

/// D(k) partition constructions (Algorithm 2 runs).
pub static DK_CONSTRUCTIONS: Counter = Counter::new("dk.constructions");
/// Selective refinement rounds driven by D(k) construction, summed.
pub static DK_CONSTRUCT_ROUNDS: Counter = Counter::new("dk.construct_rounds");
/// Distribution of final block counts per construction.
pub static DK_BLOCKS_PER_CONSTRUCTION: Histogram =
    Histogram::new("dk.blocks_per_construction", Unit::Count);
/// Wall-clock per construction.
pub static DK_CONSTRUCT_NS: Histogram = Histogram::new("dk.construct_ns", Unit::Nanos);
/// Promoting-process invocations (`DkIndex::promote`, §5.3).
pub static DK_PROMOTE_CALLS: Counter = Counter::new("dk.promote_calls");
/// Extent splits performed by promotions.
pub static DK_PROMOTE_SPLITS: Counter = Counter::new("dk.promote_splits");
/// Wall-clock per `promote_to_requirements` pass.
pub static DK_PROMOTE_NS: Histogram = Histogram::new("dk.promote_ns", Unit::Nanos);
/// Demoting-process invocations (`DkIndex::demote`, §5.4).
pub static DK_DEMOTIONS: Counter = Counter::new("dk.demotions");
/// Index nodes merged away by demotions.
pub static DK_DEMOTE_NODES_SAVED: Counter = Counter::new("dk.demote_nodes_saved");
/// Wall-clock per demotion.
pub static DK_DEMOTE_NS: Histogram = Histogram::new("dk.demote_ns", Unit::Nanos);
/// Edge-addition updates applied (Algorithms 4+5, §5.2).
pub static DK_EDGE_UPDATES: Counter = Counter::new("dk.edge_updates");
/// Index nodes whose similarity an edge update lowered.
pub static DK_EDGE_NODES_LOWERED: Counter = Counter::new("dk.edge_nodes_lowered");
/// Index nodes touched by edge updates (the Table 1 work measure).
pub static DK_EDGE_NODES_TOUCHED: Counter = Counter::new("dk.edge_nodes_touched");
/// Wall-clock per edge update.
pub static DK_EDGE_UPDATE_NS: Histogram = Histogram::new("dk.edge_update_ns", Unit::Nanos);

// ---- dkindex-core: the adaptive tuning loop (§5.3/§5.4/§7) ---------------

/// Queries recorded by `AdaptiveTuner::evaluate`.
pub static TUNER_QUERIES: Counter = Counter::new("tuner.queries");
/// Recorded queries that triggered validation.
pub static TUNER_VALIDATIONS: Counter = Counter::new("tuner.validations");
/// Observation windows that filled and ran the tuning step.
pub static TUNER_WINDOWS: Counter = Counter::new("tuner.windows");
/// Tuning steps that promoted (index split up toward the load).
pub static TUNER_PROMOTIONS: Counter = Counter::new("tuner.promotions");
/// Tuning steps that demoted (index shrunk away from a shallow load).
pub static TUNER_DEMOTIONS: Counter = Counter::new("tuner.demotions");
/// Wall-clock per executed tuning step (full windows only).
pub static TUNER_TUNE_NS: Histogram = Histogram::new("tuner.tune_ns", Unit::Nanos);

// ---- dkindex-core: live tuning inside the serve loop ---------------------

/// Queries the serve-loop `LoadMonitor` recorded (epoch readers feed it on
/// every `Epoch::evaluate`/`evaluate_bounded`, lock-free).
pub static TUNER_LIVE_QUERIES: Counter = Counter::new("tuner.live.queries");
/// Recorded serve queries whose answer needed the validation process.
pub static TUNER_LIVE_VALIDATIONS: Counter = Counter::new("tuner.live.validations");
/// Harvested windows large enough to mine (each ran one planning pass).
pub static TUNER_LIVE_WINDOWS: Counter = Counter::new("tuner.live.windows");
/// Planning passes that enqueued a promotion (`SetRequirements` op).
pub static TUNER_LIVE_PROMOTIONS: Counter = Counter::new("tuner.live.promotions");
/// Planning passes that enqueued a demotion (`Demote` op).
pub static TUNER_LIVE_DEMOTIONS: Counter = Counter::new("tuner.live.demotions");
/// Tuning `ServeOp`s the maintenance thread self-enqueued.
pub static TUNER_LIVE_OPS: Counter = Counter::new("tuner.live.ops");
/// Wall-clock per live planning pass (harvest + mine + plan; the enqueued
/// op's apply cost lands in `serve.publish_ns` like any other op).
pub static TUNER_LIVE_PLAN_NS: Histogram = Histogram::new("tuner.live.plan_ns", Unit::Nanos);

// ---- dkindex-core: concurrent serving (core::serve) ----------------------

/// Epochs published by the maintenance thread (one per applied batch).
pub static SERVE_EPOCH_PUBLISHES: Counter = Counter::new("serve.epoch_publishes");
/// Queries answered through `ServeHandle::evaluate` / `Epoch::evaluate`.
pub static SERVE_QUERIES: Counter = Counter::new("serve.queries");
/// Reads whose grabbed epoch was superseded before the answer returned —
/// still exact against that epoch, just no longer the newest.
pub static SERVE_STALE_EPOCH_READS: Counter = Counter::new("serve.stale_epoch_reads");
/// Per-epoch memo hits (query answered without touching the evaluator).
pub static SERVE_CACHE_HITS: Counter = Counter::new("serve.cache_hits");
/// Per-epoch memo misses (query evaluated and cached).
pub static SERVE_CACHE_MISSES: Counter = Counter::new("serve.cache_misses");
/// Index blocks the published epoch still shares pointer-identically with
/// its predecessor (summed over publishes; the COW delta-epoch win).
pub static SERVE_PUBLISH_BLOCKS_SHARED: Counter = Counter::new("serve.publish.blocks_shared");
/// Index blocks copied-on-write or freshly built for the published epoch
/// (summed over publishes; the O(touched) publish cost).
pub static SERVE_PUBLISH_BLOCKS_REBUILT: Counter = Counter::new("serve.publish.blocks_rebuilt");
/// Update acknowledgments released only after their batch's WAL group
/// commit returned (the durable-ack path).
pub static SERVE_DURABLE_ACKS: Counter = Counter::new("serve.durable_acks");
/// Maintenance batches dropped unapplied because their WAL group commit
/// failed (every submitter in the batch got a typed error).
pub static SERVE_WAL_DROPPED_BATCHES: Counter = Counter::new("serve.wal_dropped_batches");
/// Distribution of operations per applied maintenance batch.
pub static SERVE_BATCH_OPS: Histogram = Histogram::new("serve.batch_ops", Unit::Count);
/// Wall-clock per batch apply + epoch publish.
pub static SERVE_PUBLISH_NS: Histogram = Histogram::new("serve.publish_ns", Unit::Nanos);

// ---- dkindex-server: network serving (serve.net.*) -----------------------

/// TCP connections accepted and handed to a worker.
pub static SERVE_NET_CONNECTIONS: Counter = Counter::new("serve.net.connections");
/// Connections shed at the door: the bounded accept queue was full, so the
/// connection got a best-effort SHED(queue-full) frame and was closed
/// without ever reaching a worker.
pub static SERVE_NET_CONNECTIONS_SHED: Counter = Counter::new("serve.net.connections_shed");
/// Request frames decoded across all connections (any opcode).
pub static SERVE_NET_REQUESTS: Counter = Counter::new("serve.net.requests");
/// QUERY requests answered with an ANSWER frame.
pub static SERVE_NET_QUERIES: Counter = Counter::new("serve.net.queries");
/// UPDATE requests admitted past the staleness gate into the maintenance
/// queue (each got an UPDATE_OK frame).
pub static SERVE_NET_UPDATES_ADMITTED: Counter = Counter::new("serve.net.updates_admitted");
/// Requests refused with a typed SHED frame (maintenance-lag or draining;
/// queue-full sheds are counted per-connection above).
pub static SERVE_NET_RESPONSES_SHED: Counter = Counter::new("serve.net.responses_shed");
/// Requests refused with an ERROR frame (malformed, bad query, budget
/// exhausted, unsupported version, unavailable).
pub static SERVE_NET_RESPONSES_ERROR: Counter = Counter::new("serve.net.responses_error");
/// QUERY requests aborted by the per-request visit-budget admission bound
/// (a subset of `serve.net.responses_error`).
pub static SERVE_NET_BUDGET_ABORTS: Counter = Counter::new("serve.net.budget_aborts");
/// Payload bytes read off client sockets (frame headers included).
pub static SERVE_NET_BYTES_READ: Counter = Counter::new("serve.net.bytes_read");
/// Payload bytes written to client sockets (frame headers included).
pub static SERVE_NET_BYTES_WRITTEN: Counter = Counter::new("serve.net.bytes_written");
/// Wall-clock per request, decode through response write.
pub static SERVE_NET_REQUEST_NS: Histogram = Histogram::new("serve.net.request_ns", Unit::Nanos);
/// Wall-clock of each graceful drain (stop accepting → workers joined).
pub static SERVE_NET_DRAIN_NS: Histogram = Histogram::new("serve.net.drain_ns", Unit::Nanos);

// ---- dkindex-workload: update-stream generation (§6.2) -------------------

/// Update edges generated.
pub static UPDATES_EDGES_GENERATED: Counter = Counter::new("updates.edges_generated");
/// Candidate draws rejected (duplicate edge, self loop, empty label group).
pub static UPDATES_REJECTED_DRAWS: Counter = Counter::new("updates.rejected_draws");
/// Wall-clock per update-stream generation.
pub static UPDATES_GENERATE_NS: Histogram =
    Histogram::new("updates.generate_ns", Unit::Nanos);

// ---- build → query → adapt phase spans (CLI + bench harness) -------------

/// Wall-clock of whole build phases (XML → graph → index).
pub static PHASE_BUILD_NS: Histogram = Histogram::new("phase.build_ns", Unit::Nanos);
/// Wall-clock of whole query phases (workload evaluation).
pub static PHASE_QUERY_NS: Histogram = Histogram::new("phase.query_ns", Unit::Nanos);
/// Wall-clock of whole adapt phases (updates + promote/demote/tuning).
pub static PHASE_ADAPT_NS: Histogram = Histogram::new("phase.adapt_ns", Unit::Nanos);

/// Every registered counter, in reporting order.
pub fn counters() -> &'static [&'static Counter] {
    static ALL: [&Counter; 67] = [
        &PATHEXPR_EVALUATIONS,
        &PATHEXPR_ACTIVATIONS,
        &PATHEXPR_VALIDATION_WALKS,
        &PATHEXPR_VALIDATION_ACTIVATIONS,
        &PARTITION_ROUNDS,
        &PARTITION_ROUNDS_CHANGED,
        &PARTITION_NODES_REFINED,
        &PARTITION_SYMBOLS_INTERNED,
        &EVAL_QUERIES,
        &EVAL_INDEX_VISITS,
        &EVAL_DATA_VISITS,
        &EVAL_SOUND_EXTENTS,
        &EVAL_VALIDATED_QUERIES,
        &EVAL_MEMO_HITS,
        &EVAL_ABORTED_QUERIES,
        &STORE_SNAPSHOT_WRITES,
        &STORE_SNAPSHOT_LOADS,
        &STORE_CRC_FAILURES,
        &WAL_RECORDS_APPENDED,
        &WAL_RECORDS_REPLAYED,
        &WAL_TORN_TAILS,
        &WAL_GROUP_COMMITS,
        &WAL_SYNC_FAILURES,
        &AUDIT_RUNS,
        &AUDIT_VIOLATIONS,
        &AUDIT_REBUILDS,
        &DK_CONSTRUCTIONS,
        &DK_CONSTRUCT_ROUNDS,
        &DK_PROMOTE_CALLS,
        &DK_PROMOTE_SPLITS,
        &DK_DEMOTIONS,
        &DK_DEMOTE_NODES_SAVED,
        &DK_EDGE_UPDATES,
        &DK_EDGE_NODES_LOWERED,
        &DK_EDGE_NODES_TOUCHED,
        &TUNER_QUERIES,
        &TUNER_VALIDATIONS,
        &TUNER_WINDOWS,
        &TUNER_PROMOTIONS,
        &TUNER_DEMOTIONS,
        &TUNER_LIVE_QUERIES,
        &TUNER_LIVE_VALIDATIONS,
        &TUNER_LIVE_WINDOWS,
        &TUNER_LIVE_PROMOTIONS,
        &TUNER_LIVE_DEMOTIONS,
        &TUNER_LIVE_OPS,
        &SERVE_EPOCH_PUBLISHES,
        &SERVE_QUERIES,
        &SERVE_STALE_EPOCH_READS,
        &SERVE_CACHE_HITS,
        &SERVE_CACHE_MISSES,
        &SERVE_PUBLISH_BLOCKS_SHARED,
        &SERVE_PUBLISH_BLOCKS_REBUILT,
        &SERVE_DURABLE_ACKS,
        &SERVE_WAL_DROPPED_BATCHES,
        &SERVE_NET_CONNECTIONS,
        &SERVE_NET_CONNECTIONS_SHED,
        &SERVE_NET_REQUESTS,
        &SERVE_NET_QUERIES,
        &SERVE_NET_UPDATES_ADMITTED,
        &SERVE_NET_RESPONSES_SHED,
        &SERVE_NET_RESPONSES_ERROR,
        &SERVE_NET_BUDGET_ABORTS,
        &SERVE_NET_BYTES_READ,
        &SERVE_NET_BYTES_WRITTEN,
        &UPDATES_EDGES_GENERATED,
        &UPDATES_REJECTED_DRAWS,
    ];
    &ALL
}

/// Every registered histogram (value distributions and span timings), in
/// reporting order.
pub fn histograms() -> &'static [&'static Histogram] {
    static ALL: [&Histogram; 23] = [
        &PATHEXPR_VISITS_PER_EVAL,
        &PARTITION_BLOCKS_PER_ROUND,
        &PARTITION_ROUND_NS,
        &EVAL_VISITS_PER_QUERY,
        &EVAL_QUERY_NS,
        &AUDIT_NS,
        &WAL_REPLAY_NS,
        &WAL_GROUP_COMMIT_NS,
        &DK_BLOCKS_PER_CONSTRUCTION,
        &DK_CONSTRUCT_NS,
        &DK_PROMOTE_NS,
        &DK_DEMOTE_NS,
        &DK_EDGE_UPDATE_NS,
        &TUNER_TUNE_NS,
        &TUNER_LIVE_PLAN_NS,
        &SERVE_BATCH_OPS,
        &SERVE_PUBLISH_NS,
        &SERVE_NET_REQUEST_NS,
        &SERVE_NET_DRAIN_NS,
        &UPDATES_GENERATE_NS,
        &PHASE_BUILD_NS,
        &PHASE_QUERY_NS,
        &PHASE_ADAPT_NS,
    ];
    &ALL
}
