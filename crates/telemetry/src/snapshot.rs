//! Point-in-time reads of the metric registry, with JSON and text rendering.

use crate::histogram::Unit;
use crate::metrics;

/// One counter's value at snapshot time.
#[derive(Clone, Debug)]
pub struct CounterSnapshot {
    /// The counter's registered name, e.g. `"eval.queries"`.
    pub name: &'static str,
    /// The value at snapshot time.
    pub value: u64,
}

/// One histogram's state at snapshot time.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// The histogram's registered name, e.g. `"eval.visits_per_query"`.
    pub name: &'static str,
    /// What the recorded values measure.
    pub unit: Unit,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation, if any.
    pub min: Option<u64>,
    /// Largest observation, if any.
    pub max: Option<u64>,
    /// Log2-resolution median (upper bound of the bucket holding p50).
    pub p50: Option<u64>,
    /// Log2-resolution p99 (upper bound of the bucket holding p99).
    pub p99: Option<u64>,
    /// Non-empty buckets as `(upper_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// A point-in-time read of every registered metric.
///
/// Reads are per-metric atomic (relaxed loads), so a snapshot taken while
/// recorders are still running is consistent per value but not across
/// values; the harnesses all snapshot after disabling the recorder.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// All registered counters, in registry order.
    pub counters: Vec<CounterSnapshot>,
    /// All registered histograms, in registry order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Read the whole registry.
    pub fn collect() -> Self {
        let counters = metrics::counters()
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name(),
                value: c.get(),
            })
            .collect();
        let histograms = metrics::histograms()
            .iter()
            .map(|h| HistogramSnapshot {
                name: h.name(),
                unit: h.unit(),
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                p50: h.quantile_upper_bound(0.5),
                p99: h.quantile_upper_bound(0.99),
                buckets: h.nonzero_buckets(),
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Look up a counter's value by registered name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a histogram by registered name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Render the snapshot as a JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"eval.queries": 12, ...},
    ///   "histograms": {
    ///     "eval.visits_per_query": {
    ///       "unit": "count", "count": 12, "sum": 340,
    ///       "min": 4, "max": 96, "p50": 31, "p99": 127,
    ///       "buckets": [{"le": 7, "n": 2}, ...]
    ///     }, ...
    ///   }
    /// }
    /// ```
    ///
    /// Metric names contain only `[a-z0-9._]`, so no string escaping is
    /// needed. Zero-count metrics are included so consumers see the full
    /// registry shape.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", c.name, c.value));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"unit\": \"{}\", \"count\": {}, \"sum\": {}, \
                 \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
                h.name,
                h.unit.as_str(),
                h.count,
                h.sum,
                json_opt(h.min),
                json_opt(h.max),
                json_opt(h.p50),
                json_opt(h.p99),
            ));
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"le\": {le}, \"n\": {n}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Render a human-readable report for `dkindex stats`: nonzero counters
    /// first, then nonempty histograms with count / sum / min / p50 / p99 /
    /// max. Returns a note instead if nothing was recorded.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let live_counters: Vec<_> = self.counters.iter().filter(|c| c.value > 0).collect();
        let live_hists: Vec<_> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if live_counters.is_empty() && live_hists.is_empty() {
            out.push_str("telemetry: no events recorded\n");
            return out;
        }
        if !live_counters.is_empty() {
            out.push_str("counters:\n");
            for c in &live_counters {
                out.push_str(&format!("  {:<32} {}\n", c.name, c.value));
            }
        }
        if !live_hists.is_empty() {
            out.push_str("histograms:\n");
            for h in &live_hists {
                out.push_str(&format!(
                    "  {:<32} n={} sum={}{u} min={} p50<={} p99<={} max={}\n",
                    h.name,
                    h.count,
                    h.sum,
                    h.min.unwrap_or(0),
                    h.p50.unwrap_or(0),
                    h.p99.unwrap_or(0),
                    h.max.unwrap_or(0),
                    u = match h.unit {
                        Unit::Nanos => "ns",
                        Unit::Count => "",
                    },
                ));
            }
        }
        out
    }
}

fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::recorder_lock;

    #[test]
    fn snapshot_reads_registry_and_renders_json_and_text() {
        let _guard = recorder_lock();
        crate::reset();
        crate::enable();
        metrics::EVAL_QUERIES.add(3);
        metrics::EVAL_VISITS_PER_QUERY.record(10);
        metrics::EVAL_VISITS_PER_QUERY.record(20);
        crate::disable();

        let snap = Snapshot::collect();
        assert_eq!(snap.counter("eval.queries"), Some(3));
        assert_eq!(snap.counter("no.such.metric"), None);
        let h = snap.histogram("eval.visits_per_query").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30);
        assert_eq!(h.min, Some(10));
        assert_eq!(h.max, Some(20));
        assert_eq!(h.mean(), Some(15.0));

        let json = snap.to_json();
        assert!(json.contains("\"eval.queries\": 3"));
        assert!(json.contains("\"eval.visits_per_query\""));
        assert!(json.contains("\"unit\": \"count\""));
        // Every registered metric appears even when zero.
        assert!(json.contains("\"partition.rounds\": 0"));

        let text = snap.render_text();
        assert!(text.contains("eval.queries"));
        assert!(text.contains("n=2"));
        crate::reset();
    }

    #[test]
    fn empty_snapshot_text_says_so() {
        let _guard = recorder_lock();
        crate::reset();
        let snap = Snapshot::collect();
        assert_eq!(snap.render_text(), "telemetry: no events recorded\n");
    }
}
