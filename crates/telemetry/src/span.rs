//! RAII span timers.

use crate::Histogram;
use std::time::Instant;

/// An RAII timer: created at the top of a scope, records the scope's
/// elapsed nanoseconds into its [`Histogram`] when dropped.
///
/// If the recorder is off at construction time the span holds no start
/// instant and drop is a no-op — a disabled span never calls
/// [`Instant::now`] at all. A span started while the recorder was on but
/// dropped after it was turned off also records nothing (the histogram's
/// own gate drops the value), so toggling mid-span cannot tear state.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span {
    histogram: &'static Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Start timing into `histogram` (which should have
    /// [`Unit::Nanos`](crate::Unit::Nanos)).
    #[inline]
    pub fn start(histogram: &'static Histogram) -> Self {
        Span {
            histogram,
            start: crate::is_enabled().then(Instant::now),
        }
    }

    /// Elapsed nanoseconds so far, or `None` for a disabled span.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start
            .map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(ns) = self.elapsed_ns() {
            self.histogram.record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::recorder_lock;
    use crate::Unit;

    static SPAN_HIST: Histogram = Histogram::new("test.span_ns", Unit::Nanos);

    #[test]
    fn span_records_elapsed_time_when_enabled() {
        let _guard = recorder_lock();
        SPAN_HIST.reset();
        crate::enable();
        {
            let _span = Span::start(&SPAN_HIST);
            std::hint::black_box(0u64);
        }
        crate::disable();
        assert_eq!(SPAN_HIST.count(), 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = recorder_lock();
        SPAN_HIST.reset();
        crate::disable();
        {
            let span = Span::start(&SPAN_HIST);
            assert_eq!(span.elapsed_ns(), None);
        }
        assert_eq!(SPAN_HIST.count(), 0);
    }
}
