//! # dkindex-workload
//!
//! Workload generation for the D(k)-index experiments:
//!
//! * [`generate_test_paths`] — the paper's two-phase query workload
//!   (long random paths + shorter branching paths, 100 queries of 2–5
//!   labels, §6.1), with [`Workload::mine_requirements`] gluing the
//!   workload to D(k) requirements.
//! * [`generate_update_edges`] — the paper's update stream (random new
//!   edges between nodes of witnessed ID/IDREF label pairs, §6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paths;
pub mod updates;

pub use paths::{generate_test_paths, weighted_stream, Workload, WorkloadConfig};
pub use updates::{generate_update_edges, reference_label_pairs};
