//! Test-path generation, reproducing the paper's workload (§6.1):
//!
//! "We randomly generate 100 test paths with lengths between 2 and 5 ...
//! First, the program randomly chooses some long query paths; then, from
//! these long paths, many shorter branching paths are generated. These
//! basically simulate query patterns in real XML databases."
//!
//! Lengths are counted in *labels* (so the longest test paths, 5 labels,
//! are exactly the queries for which A(4) is the first sound A(k) — matching
//! the paper's remark that A(4) triggers no validation).

use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_pathexpr::PathExpr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_test_paths`].
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of test paths (the paper uses 100).
    pub count: usize,
    /// Minimum path length in labels (paper: 2).
    pub min_labels: usize,
    /// Maximum path length in labels (paper: 5).
    pub max_labels: usize,
    /// Number of seed "long query paths" from which the shorter branching
    /// paths are derived.
    pub long_paths: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            count: 100,
            min_labels: 2,
            max_labels: 5,
            long_paths: 20,
            seed: 2003,
        }
    }
}

/// A generated workload: linear path queries guaranteed to match at least
/// one node path in the data graph they were generated from.
#[derive(Clone, Debug)]
pub struct Workload {
    queries: Vec<PathExpr>,
}

impl Workload {
    /// The query list.
    pub fn queries(&self) -> &[PathExpr] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Histogram of query lengths (in labels).
    pub fn length_histogram(&self) -> Vec<(usize, usize)> {
        let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
        for q in &self.queries {
            *counts.entry(q.max_word_len().unwrap_or(0)).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Mine per-label similarity requirements from this workload
    /// (delegates to [`dkindex_core::mine_requirements`]).
    pub fn mine_requirements(&self) -> dkindex_core::Requirements {
        dkindex_core::mine_requirements(&self.queries)
    }
}

/// One random downhill walk of exactly `len` labels starting at `start`.
/// Returns `None` if the walk dead-ends early.
fn random_walk(
    data: &DataGraph,
    rng: &mut StdRng,
    start: NodeId,
    len: usize,
) -> Option<Vec<String>> {
    let mut labels = Vec::with_capacity(len);
    let mut node = start;
    labels.push(data.label_name(node).to_string());
    for _ in 1..len {
        let children = data.children_of(node);
        if children.is_empty() {
            return None;
        }
        node = children[rng.gen_range(0..children.len())];
        labels.push(data.label_name(node).to_string());
    }
    Some(labels)
}

fn to_expr(labels: &[String]) -> PathExpr {
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    PathExpr::path(&refs)
}

/// Generate the paper's two-phase workload over `data`.
///
/// Phase 1 samples `config.long_paths` random walks of `max_labels` labels
/// (falling back to the longest achievable walk when the graph is shallow).
/// Phase 2 derives the remaining queries as shorter *branching* paths: a
/// random prefix of a long walk is kept and its tail re-walked from a node
/// matching the prefix — producing sibling queries that share prefixes, the
/// shape of real XML query loads.
pub fn generate_test_paths(data: &DataGraph, config: &WorkloadConfig) -> Workload {
    assert!(config.min_labels >= 1 && config.min_labels <= config.max_labels);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let nodes: Vec<NodeId> = data
        .node_ids()
        .filter(|&n| n != data.root())
        .collect();
    assert!(!nodes.is_empty(), "cannot generate a workload for an empty graph");

    // Phase 1: long paths, remembering the node walks for branching.
    let mut long_walks: Vec<(NodeId, Vec<String>)> = Vec::new();
    let mut attempts = 0;
    while long_walks.len() < config.long_paths && attempts < config.long_paths * 50 {
        attempts += 1;
        let start = nodes[rng.gen_range(0..nodes.len())];
        if let Some(labels) = random_walk(data, &mut rng, start, config.max_labels) {
            long_walks.push((start, labels));
        }
    }
    if long_walks.is_empty() {
        // Shallow graph: fall back to the longest walks available.
        for len in (config.min_labels..config.max_labels).rev() {
            for _ in 0..config.long_paths * 10 {
                let start = nodes[rng.gen_range(0..nodes.len())];
                if let Some(labels) = random_walk(data, &mut rng, start, len) {
                    long_walks.push((start, labels));
                }
                if long_walks.len() >= config.long_paths {
                    break;
                }
            }
            if !long_walks.is_empty() {
                break;
            }
        }
    }
    assert!(!long_walks.is_empty(), "graph has no paths of the requested length");

    let mut queries: Vec<PathExpr> = long_walks
        .iter()
        .take(config.count)
        .map(|(_, labels)| to_expr(labels))
        .collect();

    // Phase 2: shorter branching paths.
    let mut guard = 0;
    while queries.len() < config.count && guard < config.count * 100 {
        guard += 1;
        let (start, labels) = &long_walks[rng.gen_range(0..long_walks.len())];
        let target = rng.gen_range(config.min_labels..=config.max_labels.min(labels.len()));
        // Keep a prefix of the walk, then re-walk the tail from the prefix's
        // start to branch onto a sibling path.
        let keep = rng.gen_range(1..=target);
        if let Some(rewalked) = random_walk(data, &mut rng, *start, target) {
            let mut branched: Vec<String> = labels[..keep.min(labels.len())].to_vec();
            branched.extend_from_slice(&rewalked[keep.min(rewalked.len())..]);
            branched.truncate(target);
            if branched.len() >= config.min_labels {
                queries.push(to_expr(&branched));
            }
        }
    }
    queries.truncate(config.count);
    Workload { queries }
}

/// A weighted query stream: the workload's queries with Zipf-like skewed
/// frequencies — "the choice of k_A should guarantee that the majority of
/// queries accessing A are ≤ k_A in length" (paper §4.1) only bites when
/// loads are skewed, which real query logs are. Rank r gets weight
/// ∝ 1/r^s; the returned stream lists each distinct query with its count.
pub fn weighted_stream(
    workload: &Workload,
    total_queries: u64,
    skew: f64,
    seed: u64,
) -> Vec<(PathExpr, u64)> {
    assert!(!workload.is_empty(), "cannot weight an empty workload");
    assert!(skew >= 0.0 && total_queries > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Random rank assignment, then Zipf weights over ranks.
    let mut queries: Vec<PathExpr> = workload.queries().to_vec();
    // Fisher–Yates with the seeded RNG for a deterministic permutation.
    for i in (1..queries.len()).rev() {
        queries.swap(i, rng.gen_range(0..=i));
    }
    let harmonic: f64 = (1..=queries.len())
        .map(|r| 1.0 / (r as f64).powf(skew))
        .sum();
    let mut stream: Vec<(PathExpr, u64)> = queries
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let share = (1.0 / ((i + 1) as f64).powf(skew)) / harmonic;
            (q, (share * total_queries as f64).round() as u64)
        })
        .filter(|&(_, w)| w > 0)
        .collect();
    // Rounding drift: give any remainder to the head of the distribution.
    let assigned: u64 = stream.iter().map(|&(_, w)| w).sum();
    if assigned < total_queries {
        stream[0].1 += total_queries - assigned;
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_datagen::{xmark_graph, XmarkConfig};

    fn graph() -> DataGraph {
        xmark_graph(&XmarkConfig::tiny())
    }

    #[test]
    fn generates_requested_count() {
        let g = graph();
        let w = generate_test_paths(&g, &WorkloadConfig::default());
        assert_eq!(w.len(), 100);
    }

    #[test]
    fn lengths_stay_in_bounds() {
        let g = graph();
        let w = generate_test_paths(&g, &WorkloadConfig::default());
        for q in w.queries() {
            let p = q.max_word_len().unwrap();
            assert!((2..=5).contains(&p), "query {q} has {p} labels");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = graph();
        let c = WorkloadConfig::default();
        let w1 = generate_test_paths(&g, &c);
        let w2 = generate_test_paths(&g, &c);
        assert_eq!(w1.queries(), w2.queries());
    }

    #[test]
    fn different_seeds_differ() {
        let g = graph();
        let w1 = generate_test_paths(&g, &WorkloadConfig::default());
        let w2 = generate_test_paths(
            &g,
            &WorkloadConfig {
                seed: 999,
                ..WorkloadConfig::default()
            },
        );
        assert_ne!(w1.queries(), w2.queries());
    }

    #[test]
    fn every_query_matches_something() {
        let g = graph();
        let w = generate_test_paths(&g, &WorkloadConfig::default());
        let mut nonempty = 0;
        for q in w.queries() {
            let (matches, _) = dkindex_core::evaluate_on_data(&g, q);
            if !matches.is_empty() {
                nonempty += 1;
            }
        }
        // Walks guarantee existence for un-branched paths; branching can
        // occasionally produce non-matching label sequences, but the bulk
        // must be satisfiable.
        assert!(nonempty * 10 >= w.len() * 9, "only {nonempty}/100 match");
    }

    #[test]
    fn mining_produces_positive_requirements() {
        let g = graph();
        let w = generate_test_paths(&g, &WorkloadConfig::default());
        let reqs = w.mine_requirements();
        assert!(reqs.max_requirement() >= 2);
        assert!(reqs.max_requirement() <= 4);
    }

    #[test]
    fn histogram_covers_all_lengths() {
        let g = graph();
        let w = generate_test_paths(&g, &WorkloadConfig::default());
        let hist = w.length_histogram();
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 100);
        // Long seed paths are always present.
        assert!(hist.iter().any(|&(l, _)| l == 5));
    }

    #[test]
    fn weighted_stream_is_skewed_and_complete() {
        let g = graph();
        let w = generate_test_paths(&g, &WorkloadConfig::default());
        let stream = weighted_stream(&w, 10_000, 1.0, 3);
        let total: u64 = stream.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10_000);
        // Head query dominates the tail by an order of magnitude.
        let head = stream.iter().map(|&(_, c)| c).max().unwrap();
        let tail = stream.iter().map(|&(_, c)| c).min().unwrap();
        assert!(head >= tail * 10, "head {head} vs tail {tail}");
        // Deterministic.
        assert_eq!(stream, weighted_stream(&w, 10_000, 1.0, 3));
        assert_ne!(stream, weighted_stream(&w, 10_000, 1.0, 4));
    }

    #[test]
    fn weighted_stream_feeds_weighted_mining() {
        let g = graph();
        let w = generate_test_paths(&g, &WorkloadConfig::default());
        let stream = weighted_stream(&w, 1_000, 1.2, 5);
        // With high support, only the hot head queries shape the index.
        let strict = dkindex_core::mine_requirements_weighted(&stream, 50);
        let lenient = dkindex_core::mine_requirements_weighted(&stream, 1);
        assert!(strict.max_requirement() <= lenient.max_requirement());
    }

    #[test]
    fn zero_skew_is_uniform() {
        let g = graph();
        let w = generate_test_paths(&g, &WorkloadConfig::default());
        let stream = weighted_stream(&w, 100_000, 0.0, 1);
        let head = stream.iter().map(|&(_, c)| c).max().unwrap();
        let tail = stream.iter().map(|&(_, c)| c).min().unwrap();
        assert!(head - tail <= head / 50, "uniform within rounding: {head} vs {tail}");
    }

    #[test]
    fn shallow_graph_falls_back_to_shorter_walks() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, dkindex_graph::EdgeKind::Tree);
        g.add_edge(a, b, dkindex_graph::EdgeKind::Tree);
        let w = generate_test_paths(
            &g,
            &WorkloadConfig {
                count: 10,
                min_labels: 2,
                max_labels: 5,
                long_paths: 3,
                seed: 1,
            },
        );
        assert!(!w.is_empty());
        for q in w.queries() {
            assert!(q.max_word_len().unwrap() >= 2);
        }
    }
}
