//! Update-stream generation, reproducing the paper's §6.2 protocol:
//!
//! "We randomly choose a pair of ID/IDREF labels in the DTD file and one
//! data node from each label group; then, a new edge is added between these
//! two data nodes."
//!
//! The DTD's ID/IDREF label pairs are recovered from the data graph itself:
//! every existing reference edge witnesses a `(source label, target label)`
//! pair, and new edges are drawn between random nodes of a random witnessed
//! pair — so the update stream has the same label structure as the data's
//! genuine references.

use dkindex_graph::{DataGraph, EdgeKind, LabelId, LabeledGraph, NodeId};
use dkindex_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The distinct `(source label, target label)` pairs witnessed by reference
/// edges in `data` — the graph-level image of the DTD's ID/IDREF pairs.
pub fn reference_label_pairs(data: &DataGraph) -> Vec<(LabelId, LabelId)> {
    let mut pairs: Vec<(LabelId, LabelId)> = data
        .edges()
        .filter(|&&(_, _, k)| k == EdgeKind::Reference)
        .map(|&(u, v, _)| (data.label_of(u), data.label_of(v)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Generate `count` new reference edges per the paper's protocol. Each edge
/// connects fresh random endpoints of a random witnessed label pair;
/// duplicates of existing edges are re-drawn.
pub fn generate_update_edges(
    data: &DataGraph,
    count: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let _span = telemetry::Span::start(&telemetry::metrics::UPDATES_GENERATE_NS);
    let pairs = reference_label_pairs(data);
    assert!(
        !pairs.is_empty(),
        "data graph has no reference edges to derive ID/IDREF label pairs from"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let by_label: Vec<Vec<NodeId>> = {
        let mut v: Vec<Vec<NodeId>> = vec![Vec::new(); data.labels().len()];
        for n in data.node_ids() {
            v[data.label_of(n).index()].push(n);
        }
        v
    };

    let mut edges = Vec::with_capacity(count);
    let mut attempts = 0;
    while edges.len() < count && attempts < count * 100 {
        attempts += 1;
        let (src_label, dst_label) = pairs[rng.gen_range(0..pairs.len())];
        let sources = &by_label[src_label.index()];
        let targets = &by_label[dst_label.index()];
        if sources.is_empty() || targets.is_empty() {
            telemetry::metrics::UPDATES_REJECTED_DRAWS.incr();
            continue;
        }
        let u = sources[rng.gen_range(0..sources.len())];
        let v = targets[rng.gen_range(0..targets.len())];
        if u == v || data.has_edge(u, v) || edges.contains(&(u, v)) {
            telemetry::metrics::UPDATES_REJECTED_DRAWS.incr();
            continue;
        }
        edges.push((u, v));
    }
    telemetry::metrics::UPDATES_EDGES_GENERATED.add(edges.len() as u64);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_datagen::{xmark_graph, XmarkConfig};

    #[test]
    fn label_pairs_come_from_reference_edges() {
        let g = xmark_graph(&XmarkConfig::tiny());
        let pairs = reference_label_pairs(&g);
        assert!(!pairs.is_empty());
        let person = g.labels().get("person").unwrap();
        let personref = g.labels().get("personref").unwrap();
        assert!(pairs.contains(&(personref, person)));
    }

    #[test]
    fn generated_edges_respect_label_pairs() {
        let g = xmark_graph(&XmarkConfig::tiny());
        let pairs = reference_label_pairs(&g);
        let edges = generate_update_edges(&g, 50, 7);
        assert_eq!(edges.len(), 50);
        for (u, v) in edges {
            assert!(pairs.contains(&(g.label_of(u), g.label_of(v))));
            assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let g = xmark_graph(&XmarkConfig::tiny());
        assert_eq!(generate_update_edges(&g, 20, 1), generate_update_edges(&g, 20, 1));
        assert_ne!(generate_update_edges(&g, 20, 1), generate_update_edges(&g, 20, 2));
    }

    #[test]
    #[should_panic(expected = "no reference edges")]
    fn graph_without_references_panics() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        generate_update_edges(&g, 1, 0);
    }

    #[test]
    fn no_duplicate_edges_in_stream() {
        let g = xmark_graph(&XmarkConfig::tiny());
        let edges = generate_update_edges(&g, 80, 3);
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len());
    }
}
