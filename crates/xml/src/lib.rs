//! # dkindex-xml
//!
//! A small, dependency-free XML front-end for the D(k)-index reproduction:
//!
//! * [`XmlParser`] — pull parser (elements, attributes, text, CDATA,
//!   comments, PIs, predefined + numeric entities).
//! * [`Document`] / [`Element`] — owned tree with a round-trip serializer.
//! * [`document_to_graph`] — mapping onto the paper's data-graph model,
//!   turning `ID`/`IDREF` attributes into reference edges (§3).
//!
//! ## Example
//!
//! ```
//! use dkindex_graph::LabeledGraph;
//! use dkindex_xml::parse_to_graph;
//!
//! let g = parse_to_graph(r#"<db><a id="x"/><b idref="x"/></db>"#).unwrap();
//! assert_eq!(g.node_count(), 4); // ROOT, db, a, b
//! assert_eq!(g.edge_count(), 4); // 3 containment + 1 reference
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parser;
pub mod stream;
pub mod to_graph;
pub mod tree;

pub use parser::{decode_entities, escape_attr, escape_text, XmlError, XmlEvent, XmlLimits, XmlParser};
pub use stream::{stream_to_graph, stream_to_graph_with_limits, StreamError};
pub use to_graph::{document_to_graph, parse_to_graph, GraphMappingError, GraphOptions};
pub use tree::{Document, Element, XmlNode};
