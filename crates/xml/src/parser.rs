//! A small pull (event) parser for the XML subset needed by the datasets in
//! the paper's evaluation: elements, attributes, character data, CDATA,
//! comments, processing instructions, the XML declaration and the five
//! predefined entities plus numeric character references.
//!
//! Not supported (not needed for the XMark/NASA-style datasets): DTD-internal
//! subsets beyond skipping `<!DOCTYPE ...>`, namespaces-aware processing
//! (prefixes are kept verbatim in names) and custom entity definitions.

use std::fmt;

/// Position-annotated parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error occurred.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XmlError {}

/// One parse event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>`; `self_closing` for `<name/>`.
    StartElement {
        /// Tag name (prefix kept verbatim).
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
        /// True for `<name/>` (no matching `EndElement` will follow).
        self_closing: bool,
    },
    /// `</name>`.
    EndElement {
        /// Tag name.
        name: String,
    },
    /// Character data (entities decoded, CDATA included verbatim).
    Text(String),
    /// `<!-- ... -->` contents.
    Comment(String),
    /// `<?target data?>` (including the XML declaration).
    ProcessingInstruction(String),
}

/// Resource limits enforced while parsing — defence against hostile inputs
/// (pathological nesting that would overflow recursive consumers, or
/// entity-reference floods). Exceeding a limit is an ordinary [`XmlError`],
/// never a crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XmlLimits {
    /// Maximum open-element nesting depth.
    pub max_depth: usize,
    /// Maximum number of entity/character references decoded across the
    /// whole document.
    pub max_entity_refs: usize,
}

impl Default for XmlLimits {
    fn default() -> Self {
        // Generous for real datasets (XMark nests ~12 deep), tight enough
        // that adversarial documents fail fast.
        XmlLimits {
            max_depth: 512,
            max_entity_refs: 1 << 20,
        }
    }
}

impl XmlLimits {
    /// No limits (the pre-hardening behaviour).
    pub fn unlimited() -> Self {
        XmlLimits {
            max_depth: usize::MAX,
            max_entity_refs: usize::MAX,
        }
    }
}

/// Streaming XML pull parser over an in-memory string.
pub struct XmlParser<'a> {
    input: &'a str,
    pos: usize,
    limits: XmlLimits,
    depth: usize,
    entity_refs: usize,
}

impl<'a> XmlParser<'a> {
    /// Create a parser over `input` with the default [`XmlLimits`].
    pub fn new(input: &'a str) -> Self {
        XmlParser::with_limits(input, XmlLimits::default())
    }

    /// Create a parser over `input` with explicit limits.
    pub fn with_limits(input: &'a str, limits: XmlLimits) -> Self {
        XmlParser {
            input,
            pos: 0,
            limits,
            depth: 0,
            entity_refs: 0,
        }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Decode entities while charging the document-wide reference budget.
    fn decode(&mut self, raw: &str, at: usize) -> Result<String, XmlError> {
        let (text, used) = decode_entities_counted(raw, at)?;
        self.entity_refs = self.entity_refs.saturating_add(used);
        if self.entity_refs > self.limits.max_entity_refs {
            return Err(XmlError {
                position: at,
                message: format!(
                    "more than {} entity references in document",
                    self.limits.max_entity_refs
                ),
            });
        }
        Ok(text)
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        let trimmed = self.rest().trim_start_matches([' ', '\t', '\r', '\n']);
        self.pos = self.input.len() - trimmed.len();
    }

    fn take_until(&mut self, delim: &str, what: &str) -> Result<&'a str, XmlError> {
        match self.rest().find(delim) {
            Some(i) => {
                let s = &self.rest()[..i];
                self.advance(i + delim.len());
                Ok(s)
            }
            None => Err(self.err(format!("unterminated {what} (expected {delim:?})"))),
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|&(_, c)| !is_name_char(c))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected a name"));
        }
        let name = &rest[..end];
        if name.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '.') {
            return Err(self.err(format!("invalid name start in {name:?}")));
        }
        self.advance(end);
        Ok(name.to_string())
    }

    fn read_attributes(&mut self) -> Result<Vec<(String, String)>, XmlError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_whitespace();
            let Some(c) = self.rest().chars().next() else {
                return Err(self.err("unterminated start tag"));
            };
            if c == '>' || c == '/' || c == '?' {
                return Ok(attrs);
            }
            let name = self.read_name()?;
            self.skip_whitespace();
            if !self.starts_with("=") {
                return Err(self.err(format!("attribute {name:?} missing '='")));
            }
            self.advance(1);
            self.skip_whitespace();
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                _ => return Err(self.err(format!("attribute {name:?} value must be quoted"))),
            };
            self.advance(1);
            let raw = self.take_until(&quote.to_string(), "attribute value")?;
            let at = self.pos;
            attrs.push((name, self.decode(raw, at)?));
        }
    }

    /// Pull the next event, or `None` at end of input.
    #[allow(clippy::should_implement_trait)] // fallible iterator; next() mirrors pull-parser convention
    pub fn next(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        if self.pos >= self.input.len() {
            return Ok(None);
        }
        if !self.starts_with("<") {
            // Character data up to the next tag.
            let end = self.rest().find('<').unwrap_or(self.rest().len());
            let raw = &self.rest()[..end];
            let at = self.pos;
            self.advance(end);
            let text = self.decode(raw, at)?;
            if text.trim().is_empty() {
                // Skip inter-element whitespace and continue pulling.
                return self.next();
            }
            return Ok(Some(XmlEvent::Text(text)));
        }
        if self.starts_with("<!--") {
            self.advance(4);
            let body = self.take_until("-->", "comment")?;
            return Ok(Some(XmlEvent::Comment(body.to_string())));
        }
        if self.starts_with("<![CDATA[") {
            self.advance(9);
            let body = self.take_until("]]>", "CDATA section")?;
            return Ok(Some(XmlEvent::Text(body.to_string())));
        }
        if self.starts_with("<!DOCTYPE") {
            // Skip the doctype, honoring one level of [...] subset.
            let rest = self.rest();
            let mut depth = 0usize;
            for (i, c) in rest.char_indices() {
                match c {
                    '[' => depth += 1,
                    ']' => depth = depth.saturating_sub(1),
                    '>' if depth == 0 => {
                        self.advance(i + 1);
                        return self.next();
                    }
                    _ => {}
                }
            }
            return Err(self.err("unterminated DOCTYPE"));
        }
        if self.starts_with("<?") {
            self.advance(2);
            let body = self.take_until("?>", "processing instruction")?;
            return Ok(Some(XmlEvent::ProcessingInstruction(body.to_string())));
        }
        if self.starts_with("</") {
            self.advance(2);
            let name = self.read_name()?;
            self.skip_whitespace();
            if !self.starts_with(">") {
                return Err(self.err(format!("malformed end tag </{name}")));
            }
            self.advance(1);
            self.depth = self.depth.saturating_sub(1);
            return Ok(Some(XmlEvent::EndElement { name }));
        }
        // Start tag.
        self.advance(1);
        let name = self.read_name()?;
        let attributes = self.read_attributes()?;
        self.skip_whitespace();
        if self.starts_with("/>") {
            self.advance(2);
            return Ok(Some(XmlEvent::StartElement {
                name,
                attributes,
                self_closing: true,
            }));
        }
        if self.starts_with(">") {
            self.advance(1);
            self.depth += 1;
            if self.depth > self.limits.max_depth {
                return Err(self.err(format!(
                    "element nesting deeper than {} levels",
                    self.limits.max_depth
                )));
            }
            return Ok(Some(XmlEvent::StartElement {
                name,
                attributes,
                self_closing: false,
            }));
        }
        Err(self.err(format!("malformed start tag <{name}")))
    }

    /// Collect every event (convenience for tests and small documents).
    pub fn into_events(mut self) -> Result<Vec<XmlEvent>, XmlError> {
        let mut events = Vec::new();
        while let Some(e) = self.next()? {
            events.push(e);
        }
        Ok(events)
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

/// Decode the five predefined entities and numeric character references.
pub fn decode_entities(raw: &str, position: usize) -> Result<String, XmlError> {
    decode_entities_counted(raw, position).map(|(text, _)| text)
}

/// [`decode_entities`] plus the number of references that were expanded, so
/// the parser can charge them against [`XmlLimits::max_entity_refs`].
fn decode_entities_counted(raw: &str, position: usize) -> Result<(String, usize), XmlError> {
    if !raw.contains('&') {
        return Ok((raw.to_string(), 0));
    }
    let mut out = String::with_capacity(raw.len());
    let mut used = 0usize;
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let Some(semi) = rest.find(';') else {
            return Err(XmlError {
                position,
                message: "unterminated entity reference".to_string(),
            });
        };
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| XmlError {
                    position,
                    message: format!("bad hex character reference &{entity};"),
                })?;
                out.push(char::from_u32(code).ok_or_else(|| XmlError {
                    position,
                    message: format!("invalid character reference &{entity};"),
                })?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| XmlError {
                    position,
                    message: format!("bad character reference &{entity};"),
                })?;
                out.push(char::from_u32(code).ok_or_else(|| XmlError {
                    position,
                    message: format!("invalid character reference &{entity};"),
                })?);
            }
            _ => {
                return Err(XmlError {
                    position,
                    message: format!("unknown entity &{entity};"),
                })
            }
        }
        used += 1;
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok((out, used))
}

/// Escape text content for serialization.
pub fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Escape an attribute value for serialization (double-quoted context).
pub fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Vec<XmlEvent> {
        XmlParser::new(s).into_events().unwrap()
    }

    #[test]
    fn parses_simple_element_with_text() {
        let ev = events("<a>hello</a>");
        assert_eq!(
            ev,
            vec![
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![],
                    self_closing: false
                },
                XmlEvent::Text("hello".into()),
                XmlEvent::EndElement { name: "a".into() },
            ]
        );
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let ev = events(r#"<item id="i1" ref='p2'/>"#);
        assert_eq!(
            ev,
            vec![XmlEvent::StartElement {
                name: "item".into(),
                attributes: vec![("id".into(), "i1".into()), ("ref".into(), "p2".into())],
                self_closing: true
            }]
        );
    }

    #[test]
    fn skips_declaration_comment_doctype() {
        let ev = events("<?xml version=\"1.0\"?><!DOCTYPE site SYSTEM \"a.dtd\"><!-- hi --><r/>");
        assert_eq!(ev.len(), 3);
        assert!(matches!(ev[0], XmlEvent::ProcessingInstruction(_)));
        assert!(matches!(ev[1], XmlEvent::Comment(_)));
        assert!(matches!(ev[2], XmlEvent::StartElement { ref name, .. } if name == "r"));
    }

    #[test]
    fn doctype_with_internal_subset() {
        let ev = events("<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r/>");
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn decodes_entities_in_text_and_attrs() {
        let ev = events(r#"<a t="x &amp; &quot;y&quot;">1 &lt; 2 &#65;&#x42;</a>"#);
        match &ev[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].1, "x & \"y\"");
            }
            _ => panic!(),
        }
        assert_eq!(ev[1], XmlEvent::Text("1 < 2 AB".into()));
    }

    #[test]
    fn cdata_passes_verbatim() {
        let ev = events("<a><![CDATA[<not> &amp; parsed]]></a>");
        assert_eq!(ev[1], XmlEvent::Text("<not> &amp; parsed".into()));
    }

    #[test]
    fn whitespace_between_elements_is_skipped() {
        let ev = events("<a>\n  <b/>\n</a>");
        assert_eq!(ev.len(), 3);
    }

    #[test]
    fn rejects_unterminated_tag() {
        assert!(XmlParser::new("<a").into_events().is_err());
        assert!(XmlParser::new("<a foo>").into_events().is_err());
        assert!(XmlParser::new("<!-- never closed").into_events().is_err());
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = XmlParser::new("<a>&nope;</a>").into_events().unwrap_err();
        assert!(err.message.contains("unknown entity"));
    }

    #[test]
    fn rejects_bad_name() {
        assert!(XmlParser::new("<1abc/>").into_events().is_err());
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "a<b & \"c\" > d";
        let escaped = escape_attr(nasty);
        assert_eq!(decode_entities(&escaped, 0).unwrap(), nasty);
    }

    #[test]
    fn numeric_entity_out_of_range_is_rejected() {
        assert!(XmlParser::new("<a>&#x110000;</a>").into_events().is_err());
        assert!(XmlParser::new("<a>&#xD800;</a>").into_events().is_err()); // surrogate
        assert!(XmlParser::new("<a>&#99999999999;</a>").into_events().is_err());
    }

    #[test]
    fn unquoted_attribute_value_is_rejected() {
        assert!(XmlParser::new("<a k=v/>").into_events().is_err());
    }

    #[test]
    fn nested_doctype_brackets_are_skipped() {
        let ev = events("<!DOCTYPE r [<!ENTITY x \"[y]\">]><r/>");
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn crlf_whitespace_between_elements() {
        let ev = events("<a>\r\n  <b/>\r\n</a>");
        assert_eq!(ev.len(), 3);
    }

    #[test]
    fn empty_cdata_and_comment() {
        let ev = events("<a><![CDATA[]]><!----></a>");
        // CDATA is verbatim: even an empty section yields a text event
        // (unlike character data, which folds pure whitespace away).
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[1], XmlEvent::Text(String::new()));
        assert!(matches!(ev[2], XmlEvent::Comment(_)));
    }

    #[test]
    fn namespaced_names_kept_verbatim() {
        let ev = events("<ns:a xlink:href=\"x\"/>");
        match &ev[0] {
            XmlEvent::StartElement { name, attributes, .. } => {
                assert_eq!(name, "ns:a");
                assert_eq!(attributes[0].0, "xlink:href");
            }
            _ => panic!(),
        }
    }

    fn nested_doc(depth: usize) -> String {
        let mut doc = String::new();
        for _ in 0..depth {
            doc.push_str("<a>");
        }
        for _ in 0..depth {
            doc.push_str("</a>");
        }
        doc
    }

    #[test]
    fn default_limits_reject_pathological_nesting() {
        let doc = nested_doc(600);
        let err = XmlParser::new(&doc).into_events().unwrap_err();
        assert!(err.message.contains("nesting"), "message: {}", err.message);
        // The same document parses fine without limits.
        let ev = XmlParser::with_limits(&doc, XmlLimits::unlimited())
            .into_events()
            .unwrap();
        assert_eq!(ev.len(), 1200);
    }

    #[test]
    fn documents_at_the_depth_limit_still_parse() {
        let doc = nested_doc(512);
        assert!(XmlParser::new(&doc).into_events().is_ok());
    }

    #[test]
    fn custom_depth_limit_is_enforced() {
        let doc = nested_doc(4);
        let tight = XmlLimits {
            max_depth: 3,
            ..XmlLimits::default()
        };
        assert!(XmlParser::with_limits(&doc, tight).into_events().is_err());
        let exact = XmlLimits {
            max_depth: 4,
            ..XmlLimits::default()
        };
        assert!(XmlParser::with_limits(&doc, exact).into_events().is_ok());
    }

    #[test]
    fn entity_flood_is_rejected() {
        let mut doc = String::from("<a>");
        for _ in 0..100 {
            doc.push_str("&amp;");
        }
        doc.push_str("</a>");
        let tight = XmlLimits {
            max_entity_refs: 99,
            ..XmlLimits::default()
        };
        let err = XmlParser::with_limits(&doc, tight).into_events().unwrap_err();
        assert!(err.message.contains("entity references"), "message: {}", err.message);
        // 100 references are fine at the exact budget and under defaults.
        let exact = XmlLimits {
            max_entity_refs: 100,
            ..XmlLimits::default()
        };
        assert!(XmlParser::with_limits(&doc, exact).into_events().is_ok());
        assert!(XmlParser::new(&doc).into_events().is_ok());
    }

    #[test]
    fn entity_budget_counts_attributes_too() {
        let doc = r#"<a k="&lt;&gt;&amp;"/>"#;
        let tight = XmlLimits {
            max_entity_refs: 2,
            ..XmlLimits::default()
        };
        assert!(XmlParser::with_limits(doc, tight).into_events().is_err());
    }
}
