//! Streaming XML → data-graph construction: builds the graph directly from
//! parser events without materializing a [`crate::Document`] tree. Uses the
//! same [`GraphOptions`] and produces exactly the same graph as the DOM path
//! (`parse → document_to_graph`) — asserted by tests — while holding only
//! the open-element stack in memory, so multi-hundred-MB documents index in
//! O(depth) space.
//!
//! ```
//! use dkindex_graph::LabeledGraph;
//! use dkindex_xml::{stream_to_graph, GraphOptions};
//!
//! let g = stream_to_graph(
//!     r#"<db><a id="x"/><b idref="x"/></db>"#,
//!     &GraphOptions::default(),
//! ).unwrap();
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 4); // 3 containment + 1 reference
//! ```

use crate::parser::{XmlError, XmlEvent, XmlLimits, XmlParser};
use crate::to_graph::{GraphMappingError, GraphOptions};
use dkindex_graph::{DataGraph, EdgeKind, LabelInterner, LabeledGraph, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Error from the streaming builder: either a parse error or a mapping
/// error (duplicate id / unresolved reference).
#[derive(Debug)]
pub enum StreamError {
    /// XML is not well-formed.
    Xml(XmlError),
    /// The document parsed but could not be mapped onto the graph model.
    Mapping(GraphMappingError),
    /// Structural problem outside XML well-formedness (e.g. two roots).
    Structure(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Xml(e) => write!(f, "{e}"),
            StreamError::Mapping(e) => write!(f, "{e}"),
            StreamError::Structure(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<XmlError> for StreamError {
    fn from(e: XmlError) -> Self {
        StreamError::Xml(e)
    }
}

impl From<GraphMappingError> for StreamError {
    fn from(e: GraphMappingError) -> Self {
        StreamError::Mapping(e)
    }
}

/// Build a [`DataGraph`] from XML text in one streaming pass (plus deferred
/// reference resolution at the end). Parses under [`XmlLimits::default`];
/// use [`stream_to_graph_with_limits`] to tighten or lift the bounds.
pub fn stream_to_graph(input: &str, options: &GraphOptions) -> Result<DataGraph, StreamError> {
    stream_to_graph_with_limits(input, options, XmlLimits::default())
}

/// [`stream_to_graph`] with explicit parser hardening limits (nesting depth
/// and entity-expansion budget).
pub fn stream_to_graph_with_limits(
    input: &str,
    options: &GraphOptions,
    limits: XmlLimits,
) -> Result<DataGraph, StreamError> {
    let mut parser = XmlParser::with_limits(input, limits);
    let mut g = DataGraph::new();
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut pending_refs: Vec<(NodeId, String)> = Vec::new();
    // Stack of (graph node, has_text_content) for open elements.
    let mut stack: Vec<(NodeId, bool)> = Vec::new();
    let mut seen_root = false;

    while let Some(event) = parser.next()? {
        match event {
            XmlEvent::StartElement {
                name,
                attributes,
                self_closing,
            } => {
                let parent = match stack.last() {
                    Some(&(p, _)) => p,
                    None => {
                        if seen_root {
                            return Err(StreamError::Structure(
                                "multiple root elements".to_string(),
                            ));
                        }
                        seen_root = true;
                        g.root()
                    }
                };
                let node = g.add_labeled_node(&name);
                g.add_edge(parent, node, EdgeKind::Tree);
                for (attr_name, attr_value) in &attributes {
                    if options.id_attributes.iter().any(|a| a == attr_name) {
                        if ids.insert(attr_value.clone(), node).is_some() {
                            return Err(GraphMappingError::DuplicateId(attr_value.clone()).into());
                        }
                    } else if options.idref_attributes.iter().any(|a| a == attr_name) {
                        for target in attr_value.split_whitespace() {
                            pending_refs.push((node, target.to_string()));
                        }
                    } else if options.attribute_nodes {
                        let attr_node = g.add_labeled_node(attr_name);
                        g.add_edge(node, attr_node, EdgeKind::Tree);
                        if options.value_nodes {
                            let v = g.add_node(LabelInterner::VALUE);
                            g.add_edge(attr_node, v, EdgeKind::Tree);
                        }
                    }
                }
                if self_closing {
                    // No children, no text: nothing further for this node.
                } else {
                    stack.push((node, false));
                }
            }
            XmlEvent::EndElement { name } => {
                let Some((node, has_text)) = stack.pop() else {
                    return Err(StreamError::Structure(format!(
                        "unmatched end tag </{name}>"
                    )));
                };
                let open_name = g.label_name(node).to_string();
                if open_name != name {
                    return Err(StreamError::Structure(format!(
                        "mismatched end tag: <{open_name}> closed by </{name}>"
                    )));
                }
                if has_text && options.value_nodes {
                    let v = g.add_node(LabelInterner::VALUE);
                    g.add_edge(node, v, EdgeKind::Tree);
                }
            }
            XmlEvent::Text(t) => {
                match stack.last_mut() {
                    Some((_, has_text)) => *has_text |= !t.trim().is_empty(),
                    None => {
                        return Err(StreamError::Structure(
                            "text outside the root element".to_string(),
                        ))
                    }
                }
            }
            XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction(_) => {}
        }
    }
    if let Some(&(open, _)) = stack.last() {
        return Err(StreamError::Structure(format!(
            "unclosed element <{}>",
            g.label_name(open)
        )));
    }
    if !seen_root {
        return Err(StreamError::Structure("empty document".to_string()));
    }
    for (from, target) in pending_refs {
        let Some(&to) = ids.get(&target) else {
            return Err(GraphMappingError::UnresolvedReference(target).into());
        };
        g.add_edge(from, to, EdgeKind::Reference);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_graph::document_to_graph;
    use crate::tree::Document;

    const DOC: &str = r#"
        <movieDB>
          <director id="d1"><name>X</name>
            <movie id="m1"><title>T</title></movie>
          </director>
          <actor idref="m1" role="lead"><name>Y</name></actor>
        </movieDB>"#;

    fn same_graph(a: &DataGraph, b: &DataGraph) -> bool {
        a.node_count() == b.node_count()
            && a.edges().eq(b.edges())
            && a.node_ids().all(|n| a.label_name(n) == b.label_name(n))
    }

    #[test]
    fn streaming_equals_dom_path() {
        for options in [
            GraphOptions::default(),
            GraphOptions {
                attribute_nodes: false,
                ..GraphOptions::default()
            },
            GraphOptions {
                value_nodes: true,
                ..GraphOptions::default()
            },
        ] {
            let doc = Document::parse(DOC).unwrap();
            let via_dom = document_to_graph(&doc, &options).unwrap();
            let via_stream = stream_to_graph(DOC, &options).unwrap();
            assert!(
                same_graph(&via_dom, &via_stream),
                "options {options:?}: dom {} nodes vs stream {} nodes",
                via_dom.node_count(),
                via_stream.node_count()
            );
        }
    }

    #[test]
    fn streaming_rejects_malformed_documents() {
        let o = GraphOptions::default();
        assert!(stream_to_graph("", &o).is_err());
        assert!(stream_to_graph("<a><b></a></b>", &o).is_err());
        assert!(stream_to_graph("<a/><b/>", &o).is_err());
        assert!(stream_to_graph("<a>", &o).is_err());
        assert!(stream_to_graph("text<a/>", &o).is_err());
    }

    #[test]
    fn streaming_detects_duplicate_ids_and_bad_refs() {
        let o = GraphOptions::default();
        assert!(matches!(
            stream_to_graph(r#"<r><a id="x"/><b id="x"/></r>"#, &o),
            Err(StreamError::Mapping(GraphMappingError::DuplicateId(_)))
        ));
        assert!(matches!(
            stream_to_graph(r#"<r><b idref="ghost"/></r>"#, &o),
            Err(StreamError::Mapping(GraphMappingError::UnresolvedReference(_)))
        ));
    }

    #[test]
    fn forward_references_resolve_in_streaming_mode() {
        let g = stream_to_graph(r#"<r><b idref="later"/><a id="later"/></r>"#, &GraphOptions::default()).unwrap();
        let b = g.nodes_with_label(g.labels().get("b").unwrap())[0];
        let a = g.nodes_with_label(g.labels().get("a").unwrap())[0];
        assert!(g.has_edge(b, a));
    }

    #[test]
    fn self_closing_elements_stream_correctly() {
        let g = stream_to_graph("<r><a/><b/></r>", &GraphOptions::default()).unwrap();
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn hostile_nesting_is_a_typed_error_not_a_crash() {
        let mut doc = String::new();
        for _ in 0..600 {
            doc.push_str("<a>");
        }
        for _ in 0..600 {
            doc.push_str("</a>");
        }
        let out = stream_to_graph(&doc, &GraphOptions::default());
        assert!(matches!(out, Err(StreamError::Xml(_))), "expected Xml error");
        // Explicitly lifting the limits restores the old behaviour.
        let g = stream_to_graph_with_limits(&doc, &GraphOptions::default(), XmlLimits::unlimited())
            .unwrap();
        assert_eq!(g.node_count(), 601); // ROOT + 600 <a>
    }
}
