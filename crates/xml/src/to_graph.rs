//! Mapping XML documents onto the paper's data-graph model (§3).
//!
//! * The document element becomes a child of the distinguished `ROOT` node.
//! * Every element becomes a node labeled with its tag name; containment
//!   edges are [`EdgeKind::Tree`].
//! * Attributes configured as *ID* attributes register the element in the
//!   id table; attributes configured as *IDREF(S)* attributes produce
//!   [`EdgeKind::Reference`] edges to the referenced element(s), mirroring
//!   the `ID/IDREF` construct that makes XML a graph.
//! * Remaining attributes (optional) become child nodes labeled with the
//!   attribute name, and element text content (optional) becomes `VALUE`
//!   nodes, matching "simple objects given a distinguished label VALUE".

use crate::tree::{Document, Element, XmlNode};
use dkindex_graph::{DataGraph, EdgeKind, LabelInterner, LabeledGraph, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Options controlling the XML → graph mapping.
#[derive(Clone, Debug)]
pub struct GraphOptions {
    /// Attribute names treated as element ids (default: `["id"]`).
    pub id_attributes: Vec<String>,
    /// Attribute names treated as (whitespace-separated) reference targets.
    /// Default covers the common XMark/NASA-style spellings.
    pub idref_attributes: Vec<String>,
    /// Materialize non-id attributes as child nodes labeled by the
    /// attribute name (default: true).
    pub attribute_nodes: bool,
    /// Materialize text content as `VALUE` child nodes (default: false —
    /// the paper's experiments index element structure, and `VALUE` nodes
    /// would dominate node counts without affecting label paths).
    pub value_nodes: bool,
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions {
            id_attributes: vec!["id".to_string()],
            idref_attributes: vec![
                "idref".to_string(),
                "ref".to_string(),
                "person".to_string(),
                "item".to_string(),
            ],
            attribute_nodes: true,
            value_nodes: false,
        }
    }
}

/// Error from the XML → graph mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphMappingError {
    /// Two elements declared the same id.
    DuplicateId(String),
    /// An IDREF attribute pointed at an id that no element declares.
    UnresolvedReference(String),
}

impl fmt::Display for GraphMappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphMappingError::DuplicateId(id) => write!(f, "duplicate id {id:?}"),
            GraphMappingError::UnresolvedReference(id) => {
                write!(f, "unresolved reference to id {id:?}")
            }
        }
    }
}

impl std::error::Error for GraphMappingError {}

/// Convert a parsed document into a [`DataGraph`] using `options`.
pub fn document_to_graph(
    doc: &Document,
    options: &GraphOptions,
) -> Result<DataGraph, GraphMappingError> {
    let mut g = DataGraph::new();
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut pending_refs: Vec<(NodeId, String)> = Vec::new();

    let root = g.root();
    build_element(&mut g, root, &doc.root, options, &mut ids, &mut pending_refs)?;

    for (from, target) in pending_refs {
        let Some(&to) = ids.get(&target) else {
            return Err(GraphMappingError::UnresolvedReference(target));
        };
        g.add_edge(from, to, EdgeKind::Reference);
    }
    Ok(g)
}

/// Convenience: parse `input` and map it with default options.
pub fn parse_to_graph(input: &str) -> Result<DataGraph, Box<dyn std::error::Error>> {
    let doc = Document::parse(input)?;
    Ok(document_to_graph(&doc, &GraphOptions::default())?)
}

fn build_element(
    g: &mut DataGraph,
    parent: NodeId,
    elem: &Element,
    options: &GraphOptions,
    ids: &mut HashMap<String, NodeId>,
    pending_refs: &mut Vec<(NodeId, String)>,
) -> Result<(), GraphMappingError> {
    let node = g.add_labeled_node(&elem.name);
    g.add_edge(parent, node, EdgeKind::Tree);

    for (attr_name, attr_value) in &elem.attributes {
        if options.id_attributes.iter().any(|a| a == attr_name) {
            if ids.insert(attr_value.clone(), node).is_some() {
                return Err(GraphMappingError::DuplicateId(attr_value.clone()));
            }
        } else if options.idref_attributes.iter().any(|a| a == attr_name) {
            for target in attr_value.split_whitespace() {
                pending_refs.push((node, target.to_string()));
            }
        } else if options.attribute_nodes {
            let attr_node = g.add_labeled_node(attr_name);
            g.add_edge(node, attr_node, EdgeKind::Tree);
            if options.value_nodes {
                let v = g.add_node(LabelInterner::VALUE);
                g.add_edge(attr_node, v, EdgeKind::Tree);
            }
        }
    }

    let mut has_text = false;
    for child in &elem.children {
        match child {
            XmlNode::Element(e) => {
                build_element(g, node, e, options, ids, pending_refs)?;
            }
            XmlNode::Text(t) => has_text |= !t.trim().is_empty(),
        }
    }
    if has_text && options.value_nodes {
        let v = g.add_node(LabelInterner::VALUE);
        g.add_edge(node, v, EdgeKind::Tree);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::LabeledGraph;

    const MOVIES: &str = r#"
        <movieDB>
          <director id="d1">
            <name>Lynch</name>
            <movie id="m1"><title>Dune</title></movie>
          </director>
          <actor id="a1" movie="m1">
            <name>MacLachlan</name>
          </actor>
        </movieDB>"#;

    fn options_with_movie_ref() -> GraphOptions {
        GraphOptions {
            idref_attributes: vec!["movie".to_string()],
            ..GraphOptions::default()
        }
    }

    #[test]
    fn maps_elements_and_containment() {
        let doc = Document::parse(MOVIES).unwrap();
        let g = document_to_graph(&doc, &options_with_movie_ref()).unwrap();
        // ROOT, movieDB, director, name, movie, title, actor, name
        assert_eq!(g.node_count(), 8);
        let movie_db = g.nodes_with_label(g.labels().get("movieDB").unwrap())[0];
        assert!(g.children_of(g.root()).contains(&movie_db));
    }

    #[test]
    fn resolves_idref_to_reference_edge() {
        let doc = Document::parse(MOVIES).unwrap();
        let g = document_to_graph(&doc, &options_with_movie_ref()).unwrap();
        let actor = g.nodes_with_label(g.labels().get("actor").unwrap())[0];
        let movie = g.nodes_with_label(g.labels().get("movie").unwrap())[0];
        assert!(g.has_edge(actor, movie));
        // The movie node has two parents: director (tree) and actor (ref).
        assert_eq!(g.parents_of(movie).len(), 2);
    }

    #[test]
    fn idrefs_split_on_whitespace() {
        let src = r#"<r><a id="x"/><a id="y"/><b idref="x y"/></r>"#;
        let g = parse_to_graph(src).unwrap();
        let b = g.nodes_with_label(g.labels().get("b").unwrap())[0];
        assert_eq!(g.children_of(b).len(), 2);
    }

    #[test]
    fn duplicate_id_is_an_error() {
        let src = r#"<r><a id="x"/><b id="x"/></r>"#;
        let doc = Document::parse(src).unwrap();
        let err = document_to_graph(&doc, &GraphOptions::default()).unwrap_err();
        assert_eq!(err, GraphMappingError::DuplicateId("x".to_string()));
    }

    #[test]
    fn unresolved_reference_is_an_error() {
        let src = r#"<r><b idref="ghost"/></r>"#;
        let doc = Document::parse(src).unwrap();
        let err = document_to_graph(&doc, &GraphOptions::default()).unwrap_err();
        assert_eq!(
            err,
            GraphMappingError::UnresolvedReference("ghost".to_string())
        );
    }

    #[test]
    fn attribute_nodes_can_be_disabled() {
        let src = r#"<r><a class="big"/></r>"#;
        let doc = Document::parse(src).unwrap();
        let with = document_to_graph(&doc, &GraphOptions::default()).unwrap();
        let without = document_to_graph(
            &doc,
            &GraphOptions {
                attribute_nodes: false,
                ..GraphOptions::default()
            },
        )
        .unwrap();
        assert_eq!(with.node_count(), without.node_count() + 1);
    }

    #[test]
    fn value_nodes_materialize_text() {
        let src = "<r><a>text</a></r>";
        let doc = Document::parse(src).unwrap();
        let g = document_to_graph(
            &doc,
            &GraphOptions {
                value_nodes: true,
                ..GraphOptions::default()
            },
        )
        .unwrap();
        let value_nodes = g.nodes_with_label(LabelInterner::VALUE);
        assert_eq!(value_nodes.len(), 1);
        let a = g.nodes_with_label(g.labels().get("a").unwrap())[0];
        assert!(g.has_edge(a, value_nodes[0]));
    }

    #[test]
    fn forward_references_resolve() {
        // Reference appears before the element that declares the id.
        let src = r#"<r><b idref="later"/><a id="later"/></r>"#;
        let g = parse_to_graph(src).unwrap();
        let b = g.nodes_with_label(g.labels().get("b").unwrap())[0];
        let a = g.nodes_with_label(g.labels().get("a").unwrap())[0];
        assert!(g.has_edge(b, a));
    }
}
