//! An owned document tree over the pull parser, plus a serializer.
//!
//! [`Document::parse`] builds a [`Element`] tree from text;
//! [`Document::to_xml`] writes it back out (round-trip tested).

use crate::parser::{escape_attr, escape_text, XmlError, XmlEvent, XmlParser};
use std::fmt::Write as _;

/// A node in the document tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlNode {
    /// A child element.
    Element(Element),
    /// A run of character data.
    Text(String),
}

/// An XML element: name, attributes and ordered children.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Ordered children (elements and text runs).
    pub children: Vec<XmlNode>,
}

impl Element {
    /// Create an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Value of the first attribute named `name`.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (skipping text runs).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// Concatenated direct text content.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let XmlNode::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }

    /// Total number of elements in this subtree (including self).
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }
}

/// A parsed XML document: one root element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Document {
    /// The document (root) element.
    pub root: Element,
}

impl Document {
    /// Parse a complete document. Requires exactly one root element;
    /// comments and processing instructions are discarded.
    pub fn parse(input: &str) -> Result<Document, XmlError> {
        let mut parser = XmlParser::new(input);
        let mut stack: Vec<Element> = Vec::new();
        let mut root: Option<Element> = None;
        while let Some(event) = parser.next()? {
            match event {
                XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    if root.is_some() && stack.is_empty() {
                        return Err(XmlError {
                            position: parser.position(),
                            message: "multiple root elements".to_string(),
                        });
                    }
                    let elem = Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    };
                    if self_closing {
                        attach(&mut stack, &mut root, elem);
                    } else {
                        stack.push(elem);
                    }
                }
                XmlEvent::EndElement { name } => {
                    let Some(elem) = stack.pop() else {
                        return Err(XmlError {
                            position: parser.position(),
                            message: format!("unmatched end tag </{name}>"),
                        });
                    };
                    if elem.name != name {
                        return Err(XmlError {
                            position: parser.position(),
                            message: format!("mismatched end tag: <{}> closed by </{name}>", elem.name),
                        });
                    }
                    attach(&mut stack, &mut root, elem);
                }
                XmlEvent::Text(t) => {
                    if let Some(top) = stack.last_mut() {
                        top.children.push(XmlNode::Text(t));
                    } else {
                        return Err(XmlError {
                            position: parser.position(),
                            message: "text outside the root element".to_string(),
                        });
                    }
                }
                XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction(_) => {}
            }
        }
        if let Some(open) = stack.last() {
            return Err(XmlError {
                position: parser.position(),
                message: format!("unclosed element <{}>", open.name),
            });
        }
        root.map(|root| Document { root }).ok_or(XmlError {
            position: parser.position(),
            message: "empty document".to_string(),
        })
    }

    /// Serialize with an XML declaration and 2-space indentation.
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        write_element(&mut out, &self.root, 0);
        out
    }

    /// Total number of elements in the document.
    pub fn element_count(&self) -> usize {
        self.root.subtree_size()
    }
}

fn attach(stack: &mut [Element], root: &mut Option<Element>, elem: Element) {
    if let Some(top) = stack.last_mut() {
        top.children.push(XmlNode::Element(elem));
    } else {
        *root = Some(elem);
    }
}

fn write_element(out: &mut String, elem: &Element, depth: usize) {
    let pad = "  ".repeat(depth);
    let _ = write!(out, "{pad}<{}", elem.name);
    for (k, v) in &elem.attributes {
        let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
    }
    if elem.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Mixed/text content is written inline; element-only content indented.
    let has_text = elem
        .children
        .iter()
        .any(|c| matches!(c, XmlNode::Text(_)));
    if has_text {
        out.push('>');
        for c in &elem.children {
            match c {
                XmlNode::Text(t) => out.push_str(&escape_text(t)),
                XmlNode::Element(e) => {
                    // Rare mixed content: inline without indentation.
                    let mut inner = String::new();
                    write_element(&mut inner, e, 0);
                    out.push_str(inner.trim_end_matches('\n'));
                }
            }
        }
        let _ = writeln!(out, "</{}>", elem.name);
    } else {
        out.push_str(">\n");
        for c in &elem.children {
            if let XmlNode::Element(e) = c {
                write_element(out, e, depth + 1);
            }
        }
        let _ = writeln!(out, "{pad}</{}>", elem.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = Document::parse("<a x=\"1\"><b>t</b><c/></a>").unwrap();
        assert_eq!(doc.root.name, "a");
        assert_eq!(doc.root.attr("x"), Some("1"));
        assert_eq!(doc.root.child_elements().count(), 2);
        assert_eq!(doc.root.child_elements().next().unwrap().text(), "t");
        assert_eq!(doc.element_count(), 3);
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(Document::parse("<a><b></a></b>").is_err());
        assert!(Document::parse("<a>").is_err());
        assert!(Document::parse("</a>").is_err());
        assert!(Document::parse("").is_err());
        assert!(Document::parse("<a/><b/>").is_err());
    }

    #[test]
    fn round_trip_preserves_structure() {
        let src = "<site><people><person id=\"p0\"><name>A &amp; B</name></person></people><refs><r person=\"p0\"/></refs></site>";
        let doc = Document::parse(src).unwrap();
        let printed = doc.to_xml();
        let doc2 = Document::parse(&printed).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn round_trip_with_special_characters() {
        let mut e = Element::new("a");
        e.attributes.push(("t".into(), "x<y & \"z\"".into()));
        e.children.push(XmlNode::Text("1 < 2 & 3 > 2".into()));
        let doc = Document { root: e };
        let doc2 = Document::parse(&doc.to_xml()).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn attr_returns_first_match() {
        let doc = Document::parse("<a k=\"1\" k=\"2\"/>").unwrap();
        assert_eq!(doc.root.attr("k"), Some("1"));
        assert_eq!(doc.root.attr("missing"), None);
    }

    #[test]
    fn text_concatenates_runs() {
        let doc = Document::parse("<a>x<b/>y</a>").unwrap();
        assert_eq!(doc.root.text(), "xy");
    }

    #[test]
    fn subtree_size_counts_elements_only() {
        let doc = Document::parse("<a><b><c/></b><d>text</d></a>").unwrap();
        assert_eq!(doc.root.subtree_size(), 4);
    }

    #[test]
    fn comments_and_pis_are_dropped() {
        let doc = Document::parse("<?xml version=\"1.0\"?><a><!-- c --><b/></a>").unwrap();
        assert_eq!(doc.root.child_elements().count(), 1);
    }
}
