//! The full adaptive lifecycle of a D(k)-index (paper §5): build → data
//! updates degrade local similarities → the promoting process restores
//! performance → a changed query load demotes the index back to a smaller
//! size — all without ever rebuilding from the data graph.
//!
//! Run with: `cargo run --release --example adaptive_tuning`

use dkindex::core::{DkIndex, IndexEvaluator, Requirements};
use dkindex::datagen::{nasa_graph, NasaConfig};
use dkindex::graph::DataGraph;
use dkindex::workload::{generate_test_paths, generate_update_edges, Workload, WorkloadConfig};

fn main() {
    let mut data = nasa_graph(&NasaConfig::scale(0.03));
    let workload = generate_test_paths(&data, &WorkloadConfig::default());
    let requirements = workload.mine_requirements();

    // Phase 1: build for the current load.
    let mut dk = DkIndex::build(&data, requirements);
    snapshot("built", &dk, &data, &workload);

    // Phase 2: a stream of edge additions (Algorithms 4+5). Size never
    // changes; similarities drop, validation creeps in.
    let edges = generate_update_edges(&data, 100, 42);
    for (u, v) in edges {
        dk.add_edge(&mut data, u, v);
    }
    snapshot("after 100 edge updates", &dk, &data, &workload);

    // Phase 3: a new document arrives (Algorithm 3).
    let new_file = nasa_graph(&NasaConfig {
        datasets: 5,
        seed: 77,
        ..NasaConfig::scale(0.01)
    });
    dk.add_subgraph(&mut data, &new_file);
    snapshot("after inserting a new document", &dk, &data, &workload);

    // Phase 4: periodic promotion (Algorithm 6) restores the mined
    // requirements — validation disappears again.
    let splits = dk.promote_to_requirements(&data);
    println!("    (promotion performed {splits} extent splits)");
    snapshot("after promoting", &dk, &data, &workload);

    // Phase 5: the query load shifts to short paths only; demote to a
    // smaller index without touching the data graph.
    let saved = dk.demote(Requirements::uniform(1));
    println!("    (demotion merged away {saved} index nodes)");
    snapshot("after demoting to k=1", &dk, &data, &workload);
}

fn snapshot(phase: &str, dk: &DkIndex, data: &DataGraph, workload: &Workload) {
    let mut evaluator = IndexEvaluator::new(dk.index(), data);
    let mut total = 0u64;
    let mut validated = 0usize;
    for q in workload.queries() {
        let out = evaluator.evaluate(q);
        total += out.cost.total();
        validated += usize::from(out.validated);
    }
    println!(
        "{phase:<35} size {:>6}  avg cost {:>9.1}  validated {:>3}/{}",
        dk.size(),
        total as f64 / workload.len() as f64,
        validated,
        workload.len()
    );
    dk.index()
        .check_invariants(data)
        .expect("index invariants must hold in every phase");
}
