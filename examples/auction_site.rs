//! An XMark-style auction site: generate the benchmark-shaped dataset, mine
//! a realistic query load, and compare the D(k)-index against the A(k)
//! family — a miniature of the paper's Figure 4 experiment.
//!
//! Run with: `cargo run --release --example auction_site`

use dkindex::core::{AkIndex, DkIndex, IndexEvaluator};
use dkindex::datagen::{xmark_graph, XmarkConfig};
use dkindex::graph::stats::GraphStats;
use dkindex::graph::LabeledGraph;
use dkindex::workload::{generate_test_paths, WorkloadConfig};

fn main() {
    // A small auction site (~0.5% of the paper's 10 MB file).
    let data = xmark_graph(&XmarkConfig::scale(0.005));
    println!("auction data: {}", GraphStats::of(&data));

    // The paper's workload: 100 random test paths of 2–5 labels.
    let workload = generate_test_paths(&data, &WorkloadConfig::default());
    println!(
        "workload: {} queries, length histogram {:?}",
        workload.len(),
        workload.length_histogram()
    );
    println!("sample queries:");
    for q in workload.queries().iter().take(5) {
        println!("  {q}");
    }

    // A(k) curve: size grows, cost falls as k rises.
    println!("\n{:<8} {:>12} {:>16} {:>10}", "index", "size", "avg cost", "validated");
    for k in 0..=4 {
        let ak = AkIndex::build(&data, k);
        report(&format!("A({k})"), ak.index(), &data, &workload);
    }

    // D(k): per-label requirements mined from the workload.
    let requirements = workload.mine_requirements();
    let dk = DkIndex::build(&data, requirements);
    report("D(k)", dk.index(), &data, &workload);

    println!(
        "\nD(k) summarizes {} data nodes with {} index nodes ({:.1}% of A(4)'s size) \
         while answering the whole load without validation.",
        data.node_count(),
        dk.size(),
        100.0 * dk.size() as f64 / AkIndex::build(&data, 4).size() as f64
    );
}

fn report(
    name: &str,
    index: &dkindex::core::IndexGraph,
    data: &dkindex::graph::DataGraph,
    workload: &dkindex::workload::Workload,
) {
    let mut evaluator = IndexEvaluator::new(index, data);
    let mut total = 0u64;
    let mut validated = 0usize;
    for q in workload.queries() {
        let out = evaluator.evaluate(q);
        total += out.cost.total();
        validated += usize::from(out.validated);
    }
    println!(
        "{:<8} {:>12} {:>16.1} {:>10}",
        name,
        index.size(),
        total as f64 / workload.len() as f64,
        validated
    );
}
