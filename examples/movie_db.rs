//! The paper's running example (Figure 1): a movie database with containment
//! and reference edges. Demonstrates bisimilarity, the summary hierarchy
//! (label-split ⊑ A(k) ⊑ 1-index), and why different labels need different
//! local similarities — the motivation for the D(k)-index.
//!
//! Run with: `cargo run --example movie_db`

use dkindex::core::{AkIndex, DkIndex, IndexEvaluator, OneIndex, Requirements};
use dkindex::datagen::movie_graph;
use dkindex::graph::dot::to_dot;
use dkindex::graph::LabeledGraph;
use dkindex::partition::naive_k_bisimilar;
use dkindex::pathexpr::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = movie_graph();
    let data = &m.graph;
    println!("Figure-1-style movie graph ({} nodes):", data.node_count());
    println!("{}", to_dot(data));

    // §3's bisimilarity observation: a movie with an actor parent is not
    // 1-bisimilar to a movie without one.
    let with_actor = m.movies[0]; // referenced by actor₁
    let without_actor = m.movies[1];
    println!(
        "movie {:?} ~0 movie {:?}: {}",
        with_actor,
        without_actor,
        naive_k_bisimilar(data, with_actor, without_actor, 0)
    );
    println!(
        "movie {:?} ~1 movie {:?}: {}",
        with_actor,
        without_actor,
        naive_k_bisimilar(data, with_actor, without_actor, 1)
    );

    // The summary hierarchy on this graph.
    println!("\nsummary sizes:");
    for k in 0..=3 {
        println!("  A({k}): {} nodes", AkIndex::build(data, k).size());
    }
    println!("  1-index: {} nodes", OneIndex::build(data).size());

    // §4.1's motivating observation: names are fully answerable with
    // 1-bisimilarity, but titles of movies by a specific director need 2.
    let reqs = Requirements::from_pairs([("name", 1), ("title", 2)]);
    let dk = DkIndex::build(data, reqs);
    println!("\nD(k) with name:1, title:2 -> {} nodes", dk.size());

    let mut evaluator = IndexEvaluator::new(dk.index(), data);
    for q in [
        "director.movie.title", // needs title@2: sound
        "actor.name",           // needs name@1: sound
        "movieDB.(_)?.movie.actor.name", // the paper's optional-wildcard query
        "director.movie",
    ] {
        let expr = parse(q)?;
        let out = evaluator.evaluate(&expr);
        println!(
            "  {q}  ->  {:?} (cost {}, validated {})",
            out.matches, out.cost.total(), out.validated
        );
    }

    // The same queries against a too-coarse A(0): exact but costlier.
    let a0 = AkIndex::build(data, 0);
    let mut a0_eval = IndexEvaluator::new(a0.index(), data);
    let long = parse("director.movie.title")?;
    let coarse = a0_eval.evaluate(&long);
    let tuned = evaluator.evaluate(&long);
    println!(
        "\ndirector.movie.title: A(0) cost {} (validated {}) vs D(k) cost {} (validated {})",
        coarse.cost.total(),
        coarse.validated,
        tuned.cost.total(),
        tuned.validated
    );
    assert_eq!(coarse.matches, tuned.matches);
    Ok(())
}
