//! Persistence round-trip through the library API: build a D(k)-index over
//! generated auction data, save graph + index to one `.dki` container,
//! reload in a "fresh process", verify the invariants and serve queries —
//! the workflow the `dkindex` CLI wraps.
//!
//! Run with: `cargo run --release --example persist_and_reload`

use dkindex::core::store::{load_dk, save_dk};
use dkindex::core::{CachedEvaluator, DkIndex};
use dkindex::datagen::{xmark_graph, XmarkConfig};
use dkindex::workload::{generate_test_paths, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Process 1": generate, mine, build, save.
    let data = xmark_graph(&XmarkConfig::scale(0.002));
    let workload = generate_test_paths(&data, &WorkloadConfig::default());
    let dk = DkIndex::build(&data, workload.mine_requirements());

    let mut container = Vec::new();
    save_dk(&dk, &data, &mut container)?;
    println!(
        "saved {} data nodes + {} index nodes in {} bytes ({:.1} bytes/node)",
        dkindex::graph::LabeledGraph::node_count(&data),
        dk.size(),
        container.len(),
        container.len() as f64 / dkindex::graph::LabeledGraph::node_count(&data) as f64
    );

    // "Process 2": reload (load_dk re-checks every index invariant against
    // the loaded graph) and serve the workload through the cached evaluator.
    let (loaded, loaded_data) = load_dk(&mut container.as_slice())?;
    println!("reloaded: {}", dkindex::core::IndexStats::of(loaded.index(), &loaded_data));

    let mut cache = CachedEvaluator::new(loaded.index());
    let mut cold = 0u64;
    let mut warm = 0u64;
    for q in workload.queries() {
        cold += cache.evaluate(loaded.index(), &loaded_data, q).cost.total();
    }
    for q in workload.queries() {
        warm += cache.evaluate(loaded.index(), &loaded_data, q).cost.total();
    }
    let (hits, misses) = cache.stats();
    println!(
        "workload cost: cold {cold} node visits, warm {warm} (cache: {hits} hits / {misses} misses)"
    );
    assert_eq!(warm, 0, "second pass must be fully cached");
    Ok(())
}
