//! Quickstart: parse an XML document, build a D(k)-index tuned to a query
//! load, and evaluate path expressions through it.
//!
//! Run with: `cargo run --example quickstart`

use dkindex::core::{mine_requirements, DkIndex, IndexEvaluator};
use dkindex::graph::stats::GraphStats;
use dkindex::pathexpr::parse;
use dkindex::xml::{document_to_graph, Document, GraphOptions};

const MOVIES_XML: &str = r#"
<movieDB>
  <director id="d1">
    <name>Kurosawa</name>
    <movie id="m1"><title>Ran</title><year>1985</year></movie>
    <movie id="m2"><title>Ikiru</title><year>1952</year></movie>
  </director>
  <director id="d2">
    <name>Kubrick</name>
    <movie id="m3"><title>The Shining</title><year>1980</year></movie>
  </director>
  <actor id="a1" movie="m1 m3"><name>Nakadai</name></actor>
  <actor id="a2" movie="m2"><name>Shimura</name></actor>
</movieDB>
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the XML and map it onto the data-graph model. The `movie`
    //    attribute is declared as an IDREF, so actors gain reference edges
    //    into the movies they star in — the data becomes a graph, not a tree.
    let doc = Document::parse(MOVIES_XML)?;
    let options = GraphOptions {
        idref_attributes: vec!["movie".to_string()],
        ..GraphOptions::default()
    };
    let data = document_to_graph(&doc, &options)?;
    println!("data graph: {}", GraphStats::of(&data));

    // 2. Describe the query load and mine per-label similarity requirements.
    let query_load = vec![
        parse("director.movie.title")?, // titles reached by 2-step paths
        parse("actor.movie.title")?,
        parse("actor.name")?, // names by 1-step paths
        parse("movie.year")?,
    ];
    let requirements = mine_requirements(&query_load);
    println!("mined requirements:");
    let mut mined: Vec<_> = requirements.iter().collect();
    mined.sort();
    for (label, k) in mined {
        println!("  {label}: k >= {k}");
    }

    // 3. Build the adaptive D(k)-index.
    let dk = DkIndex::build(&data, requirements);
    println!(
        "D(k)-index: {} index nodes summarizing {} data nodes",
        dk.size(),
        dkindex::graph::LabeledGraph::node_count(&data),
    );

    // 4. Evaluate queries through the index. Every mined query is *sound*:
    //    answered from extents alone, without validating against the data.
    let mut evaluator = IndexEvaluator::new(dk.index(), &data);
    for query in &query_load {
        let out = evaluator.evaluate(query);
        println!(
            "{query}  ->  {} match(es), cost {} node visits, validated: {}",
            out.matches.len(),
            out.cost.total(),
            out.validated
        );
        assert!(!out.validated);
    }

    // 5. A query *outside* the tuned load still returns the exact answer —
    //    the index falls back to validation against the data graph.
    let surprise = parse("movieDB.director.movie.title")?;
    let out = evaluator.evaluate(&surprise);
    println!(
        "{surprise}  ->  {} match(es), cost {} (validated: {})",
        out.matches.len(),
        out.cost.total(),
        out.validated
    );
    Ok(())
}
