//! A self-tuning index server: the [`AdaptiveTuner`] watches a drifting
//! query stream and promotes/demotes the D(k)-index automatically — the
//! closed loop the paper sketches across §5.3, §5.4 and the future-work
//! section on query-pattern mining.
//!
//! Run with: `cargo run --release --example self_tuning`

use dkindex::core::{AdaptiveTuner, DkIndex, Requirements, TunerConfig, TuningAction};
use dkindex::datagen::{xmark_graph, XmarkConfig};
use dkindex::pathexpr::parse;

fn main() {
    let data = xmark_graph(&XmarkConfig::scale(0.003));
    let mut tuner = AdaptiveTuner::new(
        DkIndex::build(&data, Requirements::new()), // start with label-split
        TunerConfig {
            window: 50,
            min_support: 3,
            demote_slack: 1,
        },
    );

    // Phase 1: a deep analytical load (long paths).
    let deep = [
        parse("open_auctions.open_auction.bidder.personref").unwrap(),
        parse("regions.africa.item.mailbox.mail").unwrap(),
        parse("people.person.profile.interest").unwrap(),
    ];
    // Phase 2: a shallow navigational load (short paths).
    let shallow = [
        parse("person.name").unwrap(),
        parse("item.name").unwrap(),
        parse("category").unwrap(),
    ];

    println!("{:<10} {:>8} {:>12} {:>10}", "phase", "size", "avg cost", "action");
    for phase in 0..6 {
        let queries: &[_] = if phase < 3 { &deep } else { &shallow };
        let mut cost = 0u64;
        let mut count = 0u64;
        for _ in 0..20 {
            for q in queries {
                let out = tuner.evaluate(&data, q);
                cost += out.cost.total();
                count += 1;
            }
        }
        let action = tuner.maybe_tune(&data);
        println!(
            "{:<10} {:>8} {:>12.1} {:>10}",
            if phase < 3 { "deep" } else { "shallow" },
            tuner.index().size(),
            cost as f64 / count as f64,
            match action {
                TuningAction::None => "-".to_string(),
                TuningAction::Promoted { splits } => format!("+{splits} splits"),
                TuningAction::Demoted { nodes_saved } => format!("-{nodes_saved} nodes"),
            }
        );
    }
    println!(
        "\nfinal requirements: max {} | lifetime validation rate {:.1}%",
        tuner.index().requirements().max_requirement(),
        100.0 * tuner.validation_rate()
    );
}
