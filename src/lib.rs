//! # dkindex
//!
//! A from-scratch Rust implementation of **"D(k)-Index: An Adaptive
//! Structural Summary for Graph-Structured Data"** (Chen, Lim, Ong —
//! SIGMOD 2003), including every substrate the paper depends on and every
//! baseline it is evaluated against.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`graph`] — the rooted, labeled data-graph model for XML and other
//!   semi-structured data (paper §3).
//! * [`xml`] — a small XML parser/writer and the XML → graph mapping
//!   (ID/IDREF references become graph edges).
//! * [`partition`] — partition refinement: k-bisimulation, coarsest stable
//!   refinement, selective refinement.
//! * [`pathexpr`] — regular path expressions, NFA compilation, evaluation
//!   with the paper's node-visit cost model.
//! * [`core`] — the summaries: D(k)-index with all update algorithms,
//!   A(k)-index, 1-index, label-split, strong DataGuide; evaluation with
//!   validation; query-load mining.
//! * [`datagen`] — XMark-like and NASA-like dataset generators.
//! * [`workload`] — the paper's test-path and update-stream generators.
//! * [`telemetry`] — zero-dependency counters, histograms and span timers
//!   wired through the build/query/adapt hot paths; off by default and
//!   observationally transparent (see `tests/telemetry_transparency.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use dkindex::core::{DkIndex, IndexEvaluator, Requirements};
//! use dkindex::pathexpr::parse;
//! use dkindex::xml::parse_to_graph;
//!
//! let data = parse_to_graph(
//!     r#"<movieDB>
//!          <director><name/><movie id="m1"><title/></movie></director>
//!          <actor movie="m1"><name/></actor>
//!        </movieDB>"#,
//! ).unwrap();
//!
//! // Titles are asked for through 2-step paths → requirement 2.
//! let dk = DkIndex::build(&data, Requirements::from_pairs([("title", 2)]));
//! let out = IndexEvaluator::new(dk.index(), &data)
//!     .evaluate(&parse("director.movie.title").unwrap());
//! assert_eq!(out.matches.len(), 1);
//! assert!(!out.validated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dkindex_core as core;
pub use dkindex_datagen as datagen;
pub use dkindex_graph as graph;
pub use dkindex_partition as partition;
pub use dkindex_pathexpr as pathexpr;
pub use dkindex_telemetry as telemetry;
pub use dkindex_workload as workload;
pub use dkindex_xml as xml;
