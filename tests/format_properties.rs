//! Property tests for the textual and binary formats: XML round-trips,
//! path-expression printing, and the `DKG1`/`DKI1` persistence formats.

use dkindex::core::store::{load_dk, save_dk};
use dkindex::core::{DkIndex, Requirements};
use dkindex::graph::io::{read_graph, write_graph};
use dkindex::graph::{DataGraph, EdgeKind, LabeledGraph, NodeId};
use dkindex::pathexpr::{parse, PathExpr};
use dkindex::xml::{Document, Element, XmlNode};
use proptest::prelude::*;

// ---------------------------------------------------------------- XML

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes the characters that must be escaped; never whitespace-only
    // (the parser folds inter-element whitespace away by design).
    "[a-zA-Z<>&\"' ]{0,12}".prop_filter("non-blank", |s| !s.trim().is_empty())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        prop::collection::vec((name_strategy(), text_strategy()), 0..3),
        prop::option::of(text_strategy()),
    )
        .prop_map(|(name, attributes, text)| Element {
            name,
            attributes: dedup_attrs(attributes),
            children: text.into_iter().map(XmlNode::Text).collect(),
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), text_strategy()), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attributes, children)| Element {
                name,
                attributes: dedup_attrs(attributes),
                children: children.into_iter().map(XmlNode::Element).collect(),
            })
    })
}

fn dedup_attrs(mut attrs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut seen = std::collections::HashSet::new();
    attrs.retain(|(k, _)| seen.insert(k.clone()));
    attrs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xml_documents_round_trip(root in element_strategy()) {
        let doc = Document { root };
        let text = doc.to_xml();
        let back = Document::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e} in:\n{text}")))?;
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn xml_parse_is_deterministic(root in element_strategy()) {
        let doc = Document { root };
        let text = doc.to_xml();
        prop_assert_eq!(Document::parse(&text).unwrap(), Document::parse(&text).unwrap());
    }
}

// ------------------------------------------------------- path expressions

fn expr_strategy() -> impl Strategy<Value = PathExpr> {
    let leaf = prop_oneof![
        "[a-z]{1,5}".prop_map(PathExpr::Label),
        Just(PathExpr::Wildcard),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PathExpr::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PathExpr::alt(a, b)),
            inner.clone().prop_map(PathExpr::opt),
            inner.prop_map(PathExpr::star),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `display ∘ parse` is a fixpoint: parsing the printed form and
    /// printing again yields the same text (associativity may re-shape the
    /// tree, but never the language or its rendering).
    #[test]
    fn pathexpr_display_parse_display_fixpoint(e in expr_strategy()) {
        let printed = e.to_string();
        let reparsed = parse(&printed)
            .map_err(|err| TestCaseError::fail(format!("{err} in {printed}")))?;
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// Word-length analysis is stable under the print/parse cycle.
    #[test]
    fn pathexpr_lengths_survive_reparse(e in expr_strategy()) {
        let reparsed = parse(&e.to_string()).unwrap();
        prop_assert_eq!(reparsed.max_word_len(), e.max_word_len());
        prop_assert_eq!(reparsed.min_word_len(), e.min_word_len());
    }
}

// ------------------------------------------------------------ persistence

#[derive(Clone, Debug)]
struct GraphSpec {
    labels: Vec<u8>,
    parents: Vec<u8>,
    refs: Vec<(u8, u8)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (
        prop::collection::vec(0u8..6, 1..25),
        prop::collection::vec(any::<u8>(), 1..25),
        prop::collection::vec((any::<u8>(), any::<u8>()), 0..8),
    )
        .prop_map(|(labels, parents, refs)| GraphSpec {
            parents: parents[..labels.len().min(parents.len())].to_vec(),
            labels: labels[..labels.len().min(parents.len())].to_vec(),
            refs,
        })
}

fn build(spec: &GraphSpec) -> DataGraph {
    let mut g = DataGraph::new();
    let label_ids: Vec<_> = (0..6).map(|i| g.intern(&format!("l{i}"))).collect();
    let mut nodes = vec![g.root()];
    for (i, (&label, &parent)) in spec.labels.iter().zip(&spec.parents).enumerate() {
        let node = g.add_node(label_ids[label as usize]);
        let p = nodes[(parent as usize) % (i + 1)];
        g.add_edge(p, node, EdgeKind::Tree);
        nodes.push(node);
    }
    for &(from, to) in &spec.refs {
        let u = nodes[(from as usize) % nodes.len()];
        let v = nodes[(to as usize) % nodes.len()];
        if u != v {
            g.add_edge(u, v, EdgeKind::Reference);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graphs_round_trip_through_dkg1(spec in graph_spec()) {
        let g = build(&spec);
        let mut bytes = Vec::new();
        write_graph(&g, &mut bytes).unwrap();
        let back = read_graph(&mut bytes.as_slice()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert!(back.edges().eq(g.edges()));
        for n in g.node_ids() {
            prop_assert_eq!(back.label_name(n), g.label_name(n));
        }
    }

    #[test]
    fn indexes_round_trip_through_dki1(
        spec in graph_spec(),
        req_label in 0u8..6,
        req_k in 0usize..4,
        floor in 0usize..2,
    ) {
        let g = build(&spec);
        let mut reqs = Requirements::from_pairs([(format!("l{req_label}").as_str(), req_k)]);
        reqs.raise_floor(floor);
        let dk = DkIndex::build(&g, reqs);
        let mut bytes = Vec::new();
        save_dk(&dk, &g, &mut bytes).unwrap();
        let (back, g2) = load_dk(&mut bytes.as_slice())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(back.size(), dk.size());
        prop_assert_eq!(back.requirements(), dk.requirements());
        prop_assert!(back.index().to_partition().same_equivalence(&dk.index().to_partition()));
        for inode in dk.index().node_ids() {
            prop_assert_eq!(back.index().similarity(inode), dk.index().similarity(inode));
        }
    }

    /// Bit-flips anywhere in the container either fail to load or load into
    /// an index that still passes its invariants — never a silently broken
    /// summary.
    #[test]
    fn corruption_never_loads_a_broken_index(
        spec in graph_spec(),
        flip in any::<prop::sample::Index>(),
    ) {
        let g = build(&spec);
        let dk = DkIndex::build(&g, Requirements::uniform(1));
        let mut bytes = Vec::new();
        save_dk(&dk, &g, &mut bytes).unwrap();
        let i = flip.index(bytes.len());
        bytes[i] ^= 0xFF;
        if let Ok((loaded, data)) = load_dk(&mut bytes.as_slice()) {
            // If it loads at all, it must be a structurally valid summary.
            loaded
                .index()
                .check_invariants(&data)
                .map_err(TestCaseError::fail)?;
        }
    }

    /// Loaded indexes answer queries identically to the original.
    #[test]
    fn loaded_index_is_query_equivalent(spec in graph_spec(), salt in any::<u64>()) {
        use dkindex::core::IndexEvaluator;
        let g = build(&spec);
        let dk = DkIndex::build(&g, Requirements::uniform(2));
        let mut bytes = Vec::new();
        save_dk(&dk, &g, &mut bytes).unwrap();
        let (back, g2) = load_dk(&mut bytes.as_slice()).unwrap();
        // A few deterministic pseudo-random walks as queries.
        let mut x = salt | 1;
        let mut next = move |m: usize| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x as usize) % m.max(1)
        };
        for _ in 0..5 {
            let start = NodeId::from_index(next(g.node_count()));
            let mut labels = vec![g.label_name(start).to_string()];
            let mut cur = start;
            for _ in 0..next(3) + 1 {
                let children = g.children_of(cur);
                if children.is_empty() {
                    break;
                }
                cur = children[next(children.len())];
                labels.push(g.label_name(cur).to_string());
            }
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            let q = PathExpr::path(&refs);
            let a = IndexEvaluator::new(dk.index(), &g).evaluate(&q);
            let b = IndexEvaluator::new(back.index(), &g2).evaluate(&q);
            prop_assert_eq!(a.matches, b.matches, "{}", q);
        }
    }
}

// ------------------------------------------------- streaming XML builder

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The streaming XML → graph builder produces exactly the same graph as
    /// the DOM path on arbitrary generated documents.
    #[test]
    fn streaming_builder_equals_dom_builder(root in element_strategy()) {
        use dkindex::xml::{document_to_graph, stream_to_graph, GraphOptions};
        let doc = Document { root };
        let text = doc.to_xml();
        let options = GraphOptions {
            // Generated attribute names are arbitrary; disable the id/idref
            // interpretation so both paths build pure containment graphs.
            id_attributes: vec![],
            idref_attributes: vec![],
            ..GraphOptions::default()
        };
        let via_dom = document_to_graph(&doc, &options).unwrap();
        let via_stream = stream_to_graph(&text, &options)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(via_stream.node_count(), via_dom.node_count());
        prop_assert!(via_stream.edges().eq(via_dom.edges()));
        for n in via_dom.node_ids() {
            prop_assert_eq!(via_stream.label_name(n), via_dom.label_name(n));
        }
    }
}
