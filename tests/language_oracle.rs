//! Language-level oracle for the NFA compiler: a direct recursive matcher
//! over the [`PathExpr`] AST must agree with Thompson-NFA acceptance on
//! random expressions and words. This pins the automaton construction
//! independently of the graph evaluators built on top of it.

use dkindex::graph::{LabelId, LabelInterner};
use dkindex::pathexpr::{Nfa, PathExpr};
use proptest::prelude::*;

/// Does `expr` match `word` exactly? Recursive-descent semantics with
/// explicit split points — exponential, but words here are short.
fn ast_matches(expr: &PathExpr, word: &[&str]) -> bool {
    match expr {
        PathExpr::Label(l) => word.len() == 1 && word[0] == l,
        PathExpr::Wildcard => word.len() == 1,
        PathExpr::Seq(a, b) => (0..=word.len())
            .any(|i| ast_matches(a, &word[..i]) && ast_matches(b, &word[i..])),
        PathExpr::Alt(a, b) => ast_matches(a, word) || ast_matches(b, word),
        PathExpr::Opt(a) => word.is_empty() || ast_matches(a, word),
        PathExpr::Star(a) => {
            if word.is_empty() {
                return true;
            }
            // First chunk non-empty to guarantee progress.
            (1..=word.len())
                .any(|i| ast_matches(a, &word[..i]) && ast_matches(expr, &word[i..]))
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = PathExpr> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c"]).prop_map(PathExpr::label),
        Just(PathExpr::Wildcard),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PathExpr::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PathExpr::alt(a, b)),
            inner.clone().prop_map(PathExpr::opt),
            inner.prop_map(PathExpr::star),
        ]
    })
}

fn word_strategy() -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "d"]), 0..6)
}

fn interner() -> LabelInterner {
    let mut i = LabelInterner::new();
    for l in ["a", "b", "c", "d"] {
        i.intern(l);
    }
    i
}

fn to_ids(i: &LabelInterner, word: &[&str]) -> Vec<LabelId> {
    word.iter().map(|w| i.get(w).unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// NFA acceptance equals direct AST semantics.
    #[test]
    fn nfa_agrees_with_ast_semantics(e in expr_strategy(), word in word_strategy()) {
        let i = interner();
        let nfa = Nfa::compile(&e, &i);
        let expected = ast_matches(&e, &word);
        let got = nfa.accepts(&to_ids(&i, &word));
        prop_assert_eq!(got, expected, "expr {} word {:?}", e, word);
    }

    /// The reversed NFA accepts exactly the reversed words.
    #[test]
    fn reversed_nfa_accepts_reversed_words(e in expr_strategy(), word in word_strategy()) {
        let i = interner();
        let nfa = Nfa::compile(&e, &i);
        let rev = nfa.reverse();
        let mut back = word.clone();
        back.reverse();
        prop_assert_eq!(
            rev.accepts(&to_ids(&i, &back)),
            nfa.accepts(&to_ids(&i, &word)),
            "expr {} word {:?}",
            e,
            word
        );
    }

    /// Word-length bounds really bound the language.
    #[test]
    fn word_length_bounds_hold(e in expr_strategy(), word in word_strategy()) {
        let i = interner();
        let nfa = Nfa::compile(&e, &i);
        if nfa.accepts(&to_ids(&i, &word)) {
            prop_assert!(word.len() >= e.min_word_len());
            if let Some(max) = e.max_word_len() {
                prop_assert!(word.len() <= max);
            }
        }
    }
}

#[test]
fn ast_oracle_sanity() {
    let e = PathExpr::seq(
        PathExpr::label("a"),
        PathExpr::star(PathExpr::alt(PathExpr::label("b"), PathExpr::label("c"))),
    );
    assert!(ast_matches(&e, &["a"]));
    assert!(ast_matches(&e, &["a", "b", "c", "b"]));
    assert!(!ast_matches(&e, &["b"]));
    assert!(!ast_matches(&e, &[]));
}
