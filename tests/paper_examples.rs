//! The concrete examples stated in the paper's prose, §3–§4, replayed
//! against this implementation.

use dkindex::core::{evaluate_on_data, AkIndex, DkIndex, IndexEvaluator, Requirements};
use dkindex::datagen::movie_graph;
use dkindex::graph::LabeledGraph;
use dkindex::partition::naive_k_bisimilar;
use dkindex::pathexpr::parse;

/// §3: "the path expression director.movie.title, evaluated on the graph in
/// Figure 1, will return [all titles of director-reachable movies]".
#[test]
fn director_movie_title_returns_titles() {
    let m = movie_graph();
    let expr = parse("director.movie.title").unwrap();
    let (matches, _) = evaluate_on_data(&m.graph, &expr);
    // Movies 1 and 2 are under directors; movie 3 is not.
    assert_eq!(matches, vec![m.titles[0], m.titles[1]]);
}

/// §3: "movieDB.(_)?.movie.actor.name finds names of actors in movies. The
/// optional _ allows the query to ignore the irregularities in the data
/// graph": movie appears directly under movieDB *and* under director.
#[test]
fn optional_wildcard_absorbs_irregularity() {
    let m = movie_graph();
    let g = &m.graph;
    let expr = parse("movieDB.(_)?.movie.actor.name").unwrap();
    let (matches, _) = evaluate_on_data(g, &expr);
    // movie₂ (under director₂, depth needs the wildcard) references actor₂,
    // whose name is found. Without the optional hop the query would miss
    // paths through directors.
    assert!(!matches.is_empty());
    for n in &matches {
        assert_eq!(g.label_name(*n), "name");
        // Every returned name node is an actor's name.
        let parent = g.parents_of(*n)[0];
        assert_eq!(g.label_name(parent), "actor");
    }
    // Removing the optional hop loses the director-mediated match.
    let strict = parse("movieDB.movie.actor.name").unwrap();
    let (strict_matches, _) = evaluate_on_data(g, &strict);
    assert!(strict_matches.len() < matches.len());
}

/// §3 (Figure 1 discussion): movies reached through the same kinds of
/// parents are bisimilar; a movie with an actor parent is not bisimilar to
/// one without.
#[test]
fn figure1_bisimilarity_facts() {
    let m = movie_graph();
    let g = &m.graph;
    // movies[0] has parents {director, actor}; movies[1] only {director}.
    assert!(naive_k_bisimilar(g, m.movies[0], m.movies[1], 0));
    assert!(!naive_k_bisimilar(g, m.movies[0], m.movies[1], 1));
}

/// §4.1: "if queries are only concerned with the names of actors or
/// directors, the index node for name satisfying 1-bisimilarity would be
/// sufficient... but title nodes require 2-bisimilarity to answer queries
/// asking for titles of movies directed by a specific director."
#[test]
fn per_label_requirements_match_paper_motivation() {
    let m = movie_graph();
    let g = &m.graph;

    // name@1 answers actor.name and director.name without validation.
    let dk = DkIndex::build(g, Requirements::from_pairs([("name", 1)]));
    let mut evaluator = IndexEvaluator::new(dk.index(), g);
    for q in ["actor.name", "director.name"] {
        let out = evaluator.evaluate(&parse(q).unwrap());
        assert!(!out.validated, "{q} should be sound with name@1");
        assert_eq!(out.matches, evaluate_on_data(g, &parse(q).unwrap()).0);
    }
    // But title queries through directors validate at name@1...
    let title_q = parse("director.movie.title").unwrap();
    assert!(evaluator.evaluate(&title_q).validated);

    // ...and stop validating once title gets 2-bisimilarity.
    let dk2 = DkIndex::build(g, Requirements::from_pairs([("name", 1), ("title", 2)]));
    let out = IndexEvaluator::new(dk2.index(), g).evaluate(&title_q);
    assert!(!out.validated);
    assert_eq!(out.matches, evaluate_on_data(g, &title_q).0);
}

/// §4.1 properties 2–3: the D(k)-index is safe for every expression and
/// sound when local similarities cover the path length.
#[test]
fn dk_safety_on_all_figure1_queries() {
    let m = movie_graph();
    let g = &m.graph;
    let dk = DkIndex::build(g, Requirements::from_pairs([("title", 2), ("name", 1)]));
    for q in [
        "movieDB",
        "movie",
        "movie.title",
        "director.movie",
        "actor.movie.title",
        "movieDB.(_)?.movie.actor.name",
        "ROOT.movieDB.director",
        "(director|actor).name",
        "movieDB._._",
    ] {
        let expr = parse(q).unwrap();
        let truth = evaluate_on_data(g, &expr).0;
        let out = IndexEvaluator::new(dk.index(), g).evaluate(&expr);
        assert_eq!(out.matches, truth, "{q}");
    }
}

/// §4 definition discussion: "the 1-index and A(k)-index are both special
/// cases of the D(k)-index" and "the simplest index graph constructed by
/// label splitting is a D(k)-index with local similarity 0".
#[test]
fn special_cases_on_the_movie_graph() {
    let m = movie_graph();
    let g = &m.graph;
    for k in 0..4 {
        let dk = DkIndex::build(g, Requirements::uniform(k));
        let ak = AkIndex::build(g, k);
        assert!(dk
            .index()
            .to_partition()
            .same_equivalence(&ak.index().to_partition()));
    }
    let label_split = dkindex::core::label_split_index(g);
    let dk0 = DkIndex::build(g, Requirements::new());
    assert!(label_split
        .to_partition()
        .same_equivalence(&dk0.index().to_partition()));
    assert!(dk0.index().node_ids().all(|i| dk0.index().similarity(i) == 0));
}
