//! End-to-end pipeline tests: XML text → data graph → summaries → queries,
//! on both generated datasets, asserting exactness of every index against
//! direct data-graph evaluation.

use dkindex::core::{
    evaluate_on_data, label_split_index, AkIndex, DkIndex, IndexEvaluator, OneIndex,
};
use dkindex::datagen::{
    nasa_document, nasa_graph_options, xmark_document, xmark_graph_options, NasaConfig,
    XmarkConfig,
};
use dkindex::graph::{DataGraph, LabeledGraph};
use dkindex::workload::{generate_test_paths, WorkloadConfig};
use dkindex::xml::{document_to_graph, Document};

fn xmark_via_xml_text() -> DataGraph {
    // Serialize the generated document to text and parse it back: the full
    // XML pipeline is in the loop.
    let doc = xmark_document(&XmarkConfig::tiny());
    let text = doc.to_xml();
    let reparsed = Document::parse(&text).expect("generated XML must reparse");
    assert_eq!(doc, reparsed);
    document_to_graph(&reparsed, &xmark_graph_options()).expect("references resolve")
}

fn nasa_via_xml_text() -> DataGraph {
    let doc = nasa_document(&NasaConfig::tiny());
    let reparsed = Document::parse(&doc.to_xml()).expect("generated XML must reparse");
    document_to_graph(&reparsed, &nasa_graph_options()).expect("references resolve")
}

fn assert_all_indexes_exact(data: &DataGraph, seed: u64) {
    let workload = generate_test_paths(
        data,
        &WorkloadConfig {
            count: 40,
            seed,
            ..WorkloadConfig::default()
        },
    );
    let reqs = workload.mine_requirements();

    let label_split = label_split_index(data);
    label_split.check_invariants(data).unwrap();
    let ak2 = AkIndex::build(data, 2);
    ak2.index().check_invariants(data).unwrap();
    let ak4 = AkIndex::build(data, 4);
    let one = OneIndex::build(data);
    one.index().check_invariants(data).unwrap();
    let dk = DkIndex::build(data, reqs);
    dk.index().check_invariants(data).unwrap();

    let indexes: Vec<(&str, &dkindex::core::IndexGraph)> = vec![
        ("label-split", &label_split),
        ("A(2)", ak2.index()),
        ("A(4)", ak4.index()),
        ("1-index", one.index()),
        ("D(k)", dk.index()),
    ];
    for q in workload.queries() {
        let truth = evaluate_on_data(data, q).0;
        for (name, index) in &indexes {
            let out = IndexEvaluator::new(index, data).evaluate(q);
            assert_eq!(out.matches, truth, "{name} wrong on {q}");
        }
    }

    // Size ordering: label-split ≤ A(2) ≤ A(4) ≤ 1-index ≤ data.
    assert!(label_split.size() <= ak2.size());
    assert!(ak2.size() <= ak4.size());
    assert!(ak4.size() <= one.size());
    assert!(one.size() <= data.node_count());
    // D(k) sits between label-split and the first sound A(k).
    assert!(dk.size() >= label_split.size());
    assert!(dk.size() <= one.size());
}

#[test]
fn xmark_pipeline_is_exact() {
    let data = xmark_via_xml_text();
    assert!(data.node_count() > 100);
    assert_all_indexes_exact(&data, 11);
}

#[test]
fn nasa_pipeline_is_exact() {
    let data = nasa_via_xml_text();
    assert!(data.node_count() > 100);
    assert_all_indexes_exact(&data, 22);
}

#[test]
fn dk_answers_whole_mined_workload_without_validation() {
    let data = xmark_via_xml_text();
    let workload = generate_test_paths(&data, &WorkloadConfig::default());
    let dk = DkIndex::build(&data, workload.mine_requirements());
    let mut evaluator = IndexEvaluator::new(dk.index(), &data);
    for q in workload.queries() {
        let out = evaluator.evaluate(q);
        assert!(!out.validated, "mined D(k) validated {q}");
    }
}

#[test]
fn dk_extent_similarity_claims_are_truthful_on_xmark() {
    // Expensive oracle check on the small pipeline graph.
    let data = {
        let doc = xmark_document(&XmarkConfig {
            people: 6,
            items: 8,
            categories: 3,
            open_auctions: 4,
            closed_auctions: 3,
            seed: 9,
        });
        document_to_graph(&doc, &xmark_graph_options()).unwrap()
    };
    let workload = generate_test_paths(
        &data,
        &WorkloadConfig {
            count: 30,
            seed: 3,
            ..WorkloadConfig::default()
        },
    );
    let dk = DkIndex::build(&data, workload.mine_requirements());
    dk.index().check_extent_bisimilarity(&data, 5).unwrap();
}

#[test]
fn one_index_never_validates() {
    let data = nasa_via_xml_text();
    let workload = generate_test_paths(&data, &WorkloadConfig::default());
    let one = OneIndex::build(&data);
    let mut evaluator = IndexEvaluator::new(one.index(), &data);
    for q in workload.queries() {
        assert!(!evaluator.evaluate(q).validated);
    }
}

#[test]
fn dataguide_anchored_queries_agree_with_index_evaluation() {
    use dkindex::core::DataGuide;
    use dkindex::pathexpr::{parse, Nfa};

    let data = xmark_via_xml_text();
    let guide = match DataGuide::build(&data, data.node_count() * 8) {
        Ok(g) => g,
        Err(_) => return, // exponential blow-up: nothing to compare
    };
    let one = OneIndex::build(&data);
    for expr in [
        "ROOT.site.people.person",
        "ROOT.site.regions._.item.name",
        "ROOT.site.open_auctions.open_auction.bidder.personref",
        "ROOT.site.(categories|catgraph)._",
    ] {
        let e = parse(expr).unwrap();
        let nfa = Nfa::compile(&e, data.labels());
        let (guide_matches, _) = guide.evaluate_anchored(&nfa);
        let truth = evaluate_on_data(&data, &e).0;
        assert_eq!(guide_matches, truth, "DataGuide wrong on {expr}");
        let idx = IndexEvaluator::new(one.index(), &data).evaluate(&e);
        assert_eq!(idx.matches, truth, "1-index wrong on {expr}");
    }
}
