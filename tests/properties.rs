//! Property-based tests over random graphs: the safety, soundness and
//! structural invariants of every summary, checked against the naive
//! oracles (pairwise k-bisimilarity, direct data-graph evaluation).

use dkindex::core::{evaluate_on_data, AkIndex, DkIndex, IndexEvaluator, Requirements};
#[allow(unused_imports)]
use dkindex::partition::Partition;
use dkindex::graph::{DataGraph, EdgeKind, LabeledGraph, NodeId};
use dkindex::partition::{k_bisimulation, KBisimTable};
use dkindex::pathexpr::PathExpr;
use proptest::prelude::*;

/// A compact generator description proptest can shrink: a labeled tree given
/// by parent pointers, plus extra reference edges.
#[derive(Clone, Debug)]
struct GraphSpec {
    /// labels[i] in 0..label_count for node i.
    labels: Vec<u8>,
    /// parents[i] in 0..=i (0 = the root) for node i+1... encoded as raw
    /// values reduced modulo the number of existing nodes.
    parents: Vec<u8>,
    /// (from, to) raw values reduced modulo node count.
    refs: Vec<(u8, u8)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (
        prop::collection::vec(0u8..5, 1..30),
        prop::collection::vec(any::<u8>(), 1..30),
        prop::collection::vec((any::<u8>(), any::<u8>()), 0..10),
    )
        .prop_map(|(labels, parents, refs)| GraphSpec {
            parents: parents[..labels.len().min(parents.len())].to_vec(),
            labels: labels[..labels.len().min(parents.len())].to_vec(),
            refs,
        })
}

fn build(spec: &GraphSpec) -> DataGraph {
    let mut g = DataGraph::new();
    let label_ids: Vec<_> = (0..5).map(|i| g.intern(&format!("l{i}"))).collect();
    let mut nodes = vec![g.root()];
    for (i, (&label, &parent)) in spec.labels.iter().zip(&spec.parents).enumerate() {
        let node = g.add_node(label_ids[label as usize]);
        let p = nodes[(parent as usize) % (i + 1)];
        g.add_edge(p, node, EdgeKind::Tree);
        nodes.push(node);
    }
    for &(from, to) in &spec.refs {
        let u = nodes[(from as usize) % nodes.len()];
        let v = nodes[(to as usize) % nodes.len()];
        if u != v {
            g.add_edge(u, v, EdgeKind::Reference);
        }
    }
    g
}

/// Linear path queries derived from the graph: every walk that exists, plus
/// perturbed ones that may not.
fn queries_for(g: &DataGraph, salt: u64) -> Vec<PathExpr> {
    let mut queries = Vec::new();
    let mut x = salt.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move |m: usize| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x as usize) % m.max(1)
    };
    for _ in 0..8 {
        let start = NodeId::from_index(next(g.node_count()));
        let mut labels = vec![g.label_name(start).to_string()];
        let mut cur = start;
        for _ in 0..next(4) + 1 {
            let children = g.children_of(cur);
            if children.is_empty() {
                break;
            }
            cur = children[next(children.len())];
            labels.push(g.label_name(cur).to_string());
        }
        // Occasionally perturb a label so some queries match nothing.
        if next(4) == 0 {
            let i = next(labels.len());
            labels[i] = format!("l{}", next(5));
        }
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        queries.push(PathExpr::path(&refs));
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The signature-based k-bisimulation equals the naive Definition-2
    /// oracle on random graphs.
    #[test]
    fn partition_matches_naive_oracle(spec in graph_spec(), k in 0usize..4) {
        let g = build(&spec);
        let part = k_bisimulation(&g, k);
        let table = KBisimTable::compute(&g, k);
        for u in g.node_ids() {
            for v in g.node_ids() {
                prop_assert_eq!(part.same_block(u, v), table.bisimilar(u, v));
            }
        }
    }

    /// A(k+1) refines A(k) on random graphs.
    #[test]
    fn ak_chain_is_monotone(spec in graph_spec()) {
        let g = build(&spec);
        let mut prev = k_bisimulation(&g, 0);
        for k in 1..4 {
            let next = k_bisimulation(&g, k);
            prop_assert!(next.is_refinement_of(&prev));
            prev = next;
        }
    }

    /// D(k) with uniform requirements equals A(k) (Definition 3 discussion).
    #[test]
    fn dk_uniform_equals_ak(spec in graph_spec(), k in 0usize..4) {
        let g = build(&spec);
        let dk = DkIndex::build(&g, Requirements::uniform(k));
        let ak = k_bisimulation(&g, k);
        prop_assert!(dk.index().to_partition().same_equivalence(&ak));
    }

    /// Every summary returns exactly the data-graph answer after validation
    /// (safety + validation-completeness), and D(k) maintains its invariants.
    #[test]
    fn summaries_are_exact_on_random_graphs(
        spec in graph_spec(),
        salt in any::<u64>(),
        req_label in 0u8..5,
        req_k in 0usize..4,
    ) {
        let g = build(&spec);
        let queries = queries_for(&g, salt);
        let reqs = Requirements::from_pairs([(format!("l{req_label}").as_str(), req_k)]);
        let dk = DkIndex::build(&g, reqs);
        dk.index().check_invariants(&g).map_err(TestCaseError::fail)?;
        let ak = AkIndex::build(&g, 2);
        for q in &queries {
            let truth = evaluate_on_data(&g, q).0;
            let dk_out = IndexEvaluator::new(dk.index(), &g).evaluate(q);
            prop_assert_eq!(&dk_out.matches, &truth, "D(k) wrong on {}", q);
            let ak_out = IndexEvaluator::new(ak.index(), &g).evaluate(q);
            prop_assert_eq!(&ak_out.matches, &truth, "A(2) wrong on {}", q);
        }
    }

    /// D(k) similarity claims never exceed true extent bisimilarity.
    #[test]
    fn dk_similarity_claims_are_truthful(
        spec in graph_spec(),
        req_label in 0u8..5,
        req_k in 0usize..4,
    ) {
        let g = build(&spec);
        let reqs = Requirements::from_pairs([(format!("l{req_label}").as_str(), req_k)]);
        let dk = DkIndex::build(&g, reqs);
        dk.index()
            .check_extent_bisimilarity(&g, 5)
            .map_err(TestCaseError::fail)?;
    }

    /// Edge updates preserve invariants, truthfulness and exactness.
    #[test]
    fn edge_updates_preserve_everything(
        spec in graph_spec(),
        salt in any::<u64>(),
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 1..6),
    ) {
        let mut g = build(&spec);
        let mut dk = DkIndex::build(&g, Requirements::uniform(2));
        for (from, to) in edges {
            let u = NodeId::from_index((from as usize) % g.node_count());
            let v = NodeId::from_index((to as usize) % g.node_count());
            if u == v {
                continue;
            }
            dk.add_edge(&mut g, u, v);
            dk.index().check_invariants(&g).map_err(TestCaseError::fail)?;
        }
        dk.index()
            .check_extent_path_similarity(&g, 4)
            .map_err(TestCaseError::fail)?;
        for q in queries_for(&g, salt) {
            let truth = evaluate_on_data(&g, &q).0;
            let out = IndexEvaluator::new(dk.index(), &g).evaluate(&q);
            prop_assert_eq!(&out.matches, &truth, "wrong after updates on {}", q);
        }
    }

    /// Promote then verify: claims stay truthful and the requirement is met.
    #[test]
    fn promotion_is_truthful(
        spec in graph_spec(),
        target in any::<u8>(),
        k in 1usize..4,
    ) {
        let g = build(&spec);
        let mut dk = DkIndex::build(&g, Requirements::new());
        let node = NodeId::from_index((target as usize) % g.node_count());
        dk.promote(&g, node, k);
        dk.index().check_invariants(&g).map_err(TestCaseError::fail)?;
        dk.index()
            .check_extent_bisimilarity(&g, 5)
            .map_err(TestCaseError::fail)?;
        let inode = dk.index().index_of(node);
        prop_assert!(dk.index().similarity(inode) >= k);
    }

    /// Demote after random updates: still sound, still exact.
    #[test]
    fn demotion_is_truthful(
        spec in graph_spec(),
        salt in any::<u64>(),
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 0..4),
    ) {
        let mut g = build(&spec);
        let mut dk = DkIndex::build(&g, Requirements::uniform(3));
        for (from, to) in edges {
            let u = NodeId::from_index((from as usize) % g.node_count());
            let v = NodeId::from_index((to as usize) % g.node_count());
            if u != v {
                dk.add_edge(&mut g, u, v);
            }
        }
        dk.demote(Requirements::uniform(1));
        dk.index().check_invariants(&g).map_err(TestCaseError::fail)?;
        dk.index()
            .check_extent_path_similarity(&g, 4)
            .map_err(TestCaseError::fail)?;
        for q in queries_for(&g, salt) {
            let truth = evaluate_on_data(&g, &q).0;
            let out = IndexEvaluator::new(dk.index(), &g).evaluate(&q);
            prop_assert_eq!(&out.matches, &truth, "wrong after demote on {}", q);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Subgraph addition on random graphs. Theorem 2's *equality* with a
    /// from-scratch rebuild only holds when the graft does not change the
    /// broadcast requirements (DESIGN.md §3 discusses the gap in the
    /// paper's sketch); what is guaranteed unconditionally — and asserted
    /// here — is that the incremental index stays truthful and exact, and
    /// that a promotion pass restores requirement-level soundness.
    #[test]
    fn subgraph_addition_stays_sound_and_exact(
        base in graph_spec(),
        sub in graph_spec(),
        salt in any::<u64>(),
        req_label in 0u8..5,
        req_k in 0usize..3,
    ) {
        let reqs = Requirements::from_pairs([(format!("l{req_label}").as_str(), req_k)]);

        let mut g = build(&base);
        let h = build(&sub);
        let mut dk = DkIndex::build(&g, reqs.clone());
        dk.add_subgraph(&mut g, &h);
        dk.index().check_invariants(&g).map_err(TestCaseError::fail)?;
        dk.index()
            .check_extent_path_similarity(&g, 4)
            .map_err(TestCaseError::fail)?;
        for q in queries_for(&g, salt) {
            let truth = evaluate_on_data(&g, &q).0;
            let out = IndexEvaluator::new(dk.index(), &g).evaluate(&q);
            prop_assert_eq!(&out.matches, &truth, "wrong after add_subgraph on {}", q);
        }
        // A promotion pass restores the user requirements everywhere.
        dk.promote_to_requirements(&g);
        dk.index().check_invariants(&g).map_err(TestCaseError::fail)?;
        let table = dk.requirements().resolve(dk.index().labels());
        for inode in dk.index().node_ids() {
            let want = table[dk.index().label_of(inode).index()];
            prop_assert!(dk.index().similarity(inode) >= want);
        }
    }

    /// The A(k) propagate update keeps the index safe (a refinement of the
    /// true A(k)) and query-exact on random graphs.
    #[test]
    fn ak_update_is_safe_on_random_graphs(
        spec in graph_spec(),
        salt in any::<u64>(),
        k in 1usize..3,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 1..4),
    ) {
        let mut g = build(&spec);
        let mut ak = AkIndex::build(&g, k);
        for (from, to) in edges {
            let u = NodeId::from_index((from as usize) % g.node_count());
            let v = NodeId::from_index((to as usize) % g.node_count());
            if u == v {
                continue;
            }
            ak.add_edge(&mut g, u, v);
            ak.index().check_invariants(&g).map_err(TestCaseError::fail)?;
        }
        // Refinement of the freshly built A(k): never under-split.
        let fresh = k_bisimulation(&g, k);
        prop_assert!(ak.index().to_partition().is_refinement_of(&fresh));
        for q in queries_for(&g, salt) {
            let truth = evaluate_on_data(&g, &q).0;
            let out = IndexEvaluator::new(ak.index(), &g).evaluate(&q);
            prop_assert_eq!(&out.matches, &truth, "A({}) wrong on {}", k, q);
        }
    }

    /// The adaptive tuner preserves exactness and invariants across tuning
    /// rounds driven by arbitrary query streams.
    #[test]
    fn tuner_preserves_exactness(spec in graph_spec(), salt in any::<u64>()) {
        use dkindex::core::{AdaptiveTuner, TunerConfig};
        let g = build(&spec);
        let queries = queries_for(&g, salt);
        let mut tuner = AdaptiveTuner::new(
            DkIndex::build(&g, Requirements::new()),
            TunerConfig { window: 4, min_support: 1, demote_slack: 1 },
        );
        for round in 0..3 {
            for q in &queries {
                let out = tuner.evaluate(&g, q);
                let truth = evaluate_on_data(&g, q).0;
                prop_assert_eq!(&out.matches, &truth, "round {} query {}", round, q);
            }
            tuner.maybe_tune(&g);
            tuner
                .index()
                .index()
                .check_invariants(&g)
                .map_err(TestCaseError::fail)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Paige–Tarjan, the worklist coarsest refinement and the signature
    /// fixpoint all compute the same bisimulation partition.
    #[test]
    fn all_three_coarsest_engines_agree(spec in graph_spec()) {
        use dkindex::partition::{
            bisimulation_fixpoint, coarsest_stable_refinement, paige_tarjan,
        };
        let g = build(&spec);
        let fixpoint = bisimulation_fixpoint(&g);
        let pt = paige_tarjan(&g);
        let worklist = coarsest_stable_refinement(&g);
        prop_assert!(pt.same_equivalence(&fixpoint));
        prop_assert!(worklist.same_equivalence(&fixpoint));
        pt.check_consistency().map_err(TestCaseError::fail)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The scratch-arena evaluator (reused arena + validation memo) returns
    /// byte-identical matches AND costs to the allocator-per-query baseline,
    /// including on repeated queries where the memo replays stored verdicts.
    #[test]
    fn arena_evaluator_matches_baseline_byte_for_byte(
        spec in graph_spec(),
        salt in any::<u64>(),
        req_label in 0u8..5,
        req_k in 0usize..4,
    ) {
        let g = build(&spec);
        let queries = queries_for(&g, salt);
        let reqs = Requirements::from_pairs([(format!("l{req_label}").as_str(), req_k)]);
        let dk = DkIndex::build(&g, reqs);
        let ak = AkIndex::build(&g, 2);
        for index in [dk.index(), ak.index()] {
            let mut evaluator = IndexEvaluator::new(index, &g);
            // Two passes: the second runs with a warm arena and a populated
            // validation memo, which must not change any outcome.
            for _pass in 0..2 {
                for q in &queries {
                    let arena_out = evaluator.evaluate(q);
                    let baseline_out = evaluator.evaluate_baseline(q);
                    prop_assert_eq!(&arena_out, &baseline_out, "arena != baseline on {}", q);
                }
            }
        }
    }

    /// Thread count is invisible: parallel refinement reproduces the
    /// reference partitions exactly, and parallel workload evaluation
    /// returns the same outcomes as the sequential evaluator.
    #[test]
    fn parallel_paths_are_deterministic(
        spec in graph_spec(),
        salt in any::<u64>(),
        req_label in 0u8..5,
        req_k in 0usize..4,
    ) {
        use dkindex::core::dk::{dk_partition_reference, dk_partition_with_engine};
        use dkindex::core::evaluate_workload_parallel;
        use dkindex::partition::RefineEngine;

        let g = build(&spec);
        let queries = queries_for(&g, salt);
        let reqs = Requirements::from_pairs([(format!("l{req_label}").as_str(), req_k)]);

        let (ref_part, ref_sims) = dk_partition_reference(&g, &reqs, true);
        for threads in [1usize, 2, 8] {
            let mut engine = RefineEngine::with_threads(threads);
            let (part, sims) = dk_partition_with_engine(&g, &reqs, true, &mut engine);
            prop_assert_eq!(&part, &ref_part, "D(k) partition differs at {} threads", threads);
            prop_assert_eq!(&sims, &ref_sims, "D(k) sims differ at {} threads", threads);
            prop_assert_eq!(engine.k_bisimulation(&g, 2), k_bisimulation(&g, 2));
        }

        let dk = DkIndex::build(&g, reqs);
        let sequential = evaluate_workload_parallel(dk.index(), &g, &queries, 1);
        for threads in [2usize, 3, 8] {
            let parallel = evaluate_workload_parallel(dk.index(), &g, &queries, threads);
            prop_assert_eq!(&parallel, &sequential, "outcomes differ at {} threads", threads);
        }
    }
}
