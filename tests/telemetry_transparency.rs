//! Telemetry transparency: the recorder must add **no observable change** to
//! any result the library produces.
//!
//! Every instrumented fast path is run three ways — recorder off, recorder
//! on, and recorder off again — and compared against the retained PR 1
//! reference oracles ([`pathexpr::evaluate_baseline`],
//! [`partition::k_bisimulation`], `core::dk::dk_partition_reference`,
//! [`core::IndexEvaluator::evaluate_baseline`]): same matches, same visit
//! counts, same partition identity, byte for byte.
//!
//! The recorder is process-global, so every test takes [`lock`] before
//! toggling it (the test harness runs tests on parallel threads).

use dkindex::core::dk::{dk_partition_reference, dk_partition_with_engine};
use dkindex::core::{DkIndex, IndexEvaluator};
use dkindex::datagen::{xmark_graph, XmarkConfig};
use dkindex::graph::{DataGraph, LabeledGraph};
use dkindex::partition::{k_bisimulation, RefineEngine};
use dkindex::pathexpr::{
    evaluate, evaluate_baseline, matches_ending_at, matches_ending_at_baseline, LabelIndex, Nfa,
};
use dkindex::telemetry;
use dkindex::workload::{generate_test_paths, WorkloadConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn data() -> DataGraph {
    xmark_graph(&XmarkConfig::tiny())
}

/// Run `f` with the recorder off, then on, then off again, asserting all
/// three results are equal; returns the recorder-off result.
fn run_in_all_recorder_states<T: PartialEq + std::fmt::Debug>(mut f: impl FnMut() -> T) -> T {
    telemetry::disable();
    let off = f();
    telemetry::reset();
    telemetry::enable();
    let on = f();
    telemetry::disable();
    let off_again = f();
    assert_eq!(off, on, "recorder on changed the result");
    assert_eq!(off, off_again, "recorder left residual state");
    off
}

#[test]
fn pathexpr_evaluation_is_unchanged_by_recorder() {
    let _guard = lock();
    let g = data();
    let idx = LabelIndex::build(&g);
    let workload = generate_test_paths(
        &g,
        &WorkloadConfig {
            count: 25,
            seed: 11,
            ..WorkloadConfig::default()
        },
    );
    for q in workload.queries() {
        let nfa = Nfa::compile(q, g.labels());
        let fast = run_in_all_recorder_states(|| evaluate(&g, &nfa, &idx));
        let oracle = evaluate_baseline(&g, &nfa, &idx);
        assert_eq!(fast.matches, oracle.matches, "{q}");
        assert_eq!(fast.visited, oracle.visited, "{q}");

        // Validation walks: compare the instrumented reverse walk too.
        let reversed = nfa.reverse();
        for node in g.node_ids().take(40) {
            let fast = run_in_all_recorder_states(|| matches_ending_at(&g, &reversed, node));
            assert_eq!(fast, matches_ending_at_baseline(&g, &reversed, node), "{q}");
        }
    }
}

#[test]
fn partition_refinement_is_unchanged_by_recorder() {
    let _guard = lock();
    let g = data();
    for k in [0, 1, 3] {
        let fast = run_in_all_recorder_states(|| RefineEngine::new().k_bisimulation(&g, k));
        let oracle = k_bisimulation(&g, k);
        assert_eq!(fast, oracle, "A({k}) partition identity");
    }
}

#[test]
fn dk_construction_is_unchanged_by_recorder() {
    let _guard = lock();
    let g = data();
    let workload = generate_test_paths(
        &g,
        &WorkloadConfig {
            count: 30,
            seed: 5,
            ..WorkloadConfig::default()
        },
    );
    let reqs = workload.mine_requirements();
    let fast = run_in_all_recorder_states(|| {
        dk_partition_with_engine(&g, &reqs, true, &mut RefineEngine::new())
    });
    let (oracle_p, oracle_sims) = dk_partition_reference(&g, &reqs, true);
    assert_eq!(fast.0, oracle_p, "D(k) partition identity");
    assert_eq!(fast.1, oracle_sims, "D(k) similarities");
}

#[test]
fn index_evaluation_is_unchanged_by_recorder() {
    let _guard = lock();
    let g = data();
    let workload = generate_test_paths(
        &g,
        &WorkloadConfig {
            count: 30,
            seed: 5,
            ..WorkloadConfig::default()
        },
    );
    let dk = DkIndex::build(&g, workload.mine_requirements());
    let fast = run_in_all_recorder_states(|| {
        IndexEvaluator::new(dk.index(), &g).evaluate_all(workload.queries())
    });
    let evaluator = IndexEvaluator::new(dk.index(), &g);
    for (q, out) in workload.queries().iter().zip(&fast) {
        let oracle = evaluator.evaluate_baseline(q);
        assert_eq!(out.matches, oracle.matches, "{q}: matches");
        assert_eq!(out.cost, oracle.cost, "{q}: visit counts");
        assert_eq!(out.validated, oracle.validated, "{q}: validation");
    }
}

#[test]
fn recorder_on_actually_records_the_oracle_checked_work() {
    // Guard against the transparency tests passing vacuously because the
    // hooks were compiled out: the same fast paths must move the counters.
    let _guard = lock();
    let g = data();
    let workload = generate_test_paths(
        &g,
        &WorkloadConfig {
            count: 10,
            seed: 2,
            ..WorkloadConfig::default()
        },
    );
    let reqs = workload.mine_requirements();
    telemetry::reset();
    telemetry::enable();
    let dk = DkIndex::build(&g, reqs);
    IndexEvaluator::new(dk.index(), &g).evaluate_all(workload.queries());
    telemetry::disable();
    let snap = telemetry::snapshot();
    assert!(snap.counter("dk.constructions").unwrap_or(0) > 0);
    assert!(snap.counter("partition.rounds").unwrap_or(0) > 0);
    assert_eq!(snap.counter("eval.queries"), Some(workload.len() as u64));
    assert!(snap.histogram("eval.visits_per_query").is_some());
}
