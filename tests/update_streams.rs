//! Long mixed update streams: interleaved edge additions, subgraph
//! insertions, promotions and demotions must preserve every invariant and
//! keep query answers exact throughout — the paper's §5 lifecycle under
//! sustained load.

use dkindex::core::{evaluate_on_data, AkIndex, DkIndex, IndexEvaluator, Requirements};
use dkindex::datagen::{random_graph, xmark_graph, RandomGraphConfig, XmarkConfig};
use dkindex::graph::{DataGraph, LabeledGraph};
use dkindex::workload::{generate_test_paths, generate_update_edges, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_exact(dk: &DkIndex, data: &DataGraph, seed: u64) {
    let workload = generate_test_paths(
        data,
        &WorkloadConfig {
            count: 20,
            seed,
            ..WorkloadConfig::default()
        },
    );
    let mut evaluator = IndexEvaluator::new(dk.index(), data);
    for q in workload.queries() {
        let truth = evaluate_on_data(data, q).0;
        let out = evaluator.evaluate(q);
        assert_eq!(out.matches, truth, "wrong answer for {q}");
    }
}

#[test]
fn interleaved_lifecycle_stays_consistent() {
    let mut data = xmark_graph(&XmarkConfig::tiny());
    let workload = generate_test_paths(&data, &WorkloadConfig::default());
    let reqs = workload.mine_requirements();
    let mut dk = DkIndex::build(&data, reqs.clone());
    let mut rng = StdRng::seed_from_u64(99);

    for round in 0..6 {
        match round % 3 {
            0 => {
                // A burst of edge additions.
                for (u, v) in generate_update_edges(&data, 10, rng.gen()) {
                    dk.add_edge(&mut data, u, v);
                }
            }
            1 => {
                // A new document arrives.
                let sub = random_graph(&RandomGraphConfig {
                    nodes: 30,
                    labels: 4,
                    reference_edges: 5,
                    max_fanout: 5,
                    seed: rng.gen(),
                });
                dk.add_subgraph(&mut data, &sub);
            }
            _ => {
                // Periodic tuning.
                dk.promote_to_requirements(&data);
            }
        }
        dk.index()
            .check_invariants(&data)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_exact(&dk, &data, round as u64);
    }

    // Finally demote to a small index and verify once more.
    dk.demote(Requirements::uniform(1));
    dk.index().check_invariants(&data).unwrap();
    assert_exact(&dk, &data, 77);
}

#[test]
fn edge_update_stream_keeps_size_constant() {
    let mut data = xmark_graph(&XmarkConfig::tiny());
    let workload = generate_test_paths(&data, &WorkloadConfig::default());
    let mut dk = DkIndex::build(&data, workload.mine_requirements());
    let size = dk.size();
    for (u, v) in generate_update_edges(&data, 50, 123) {
        dk.add_edge(&mut data, u, v);
        assert_eq!(dk.size(), size, "edge updates must not change index size");
    }
    dk.index().check_invariants(&data).unwrap();
    assert_exact(&dk, &data, 5);
}

#[test]
fn promote_after_stream_removes_validation_for_mined_load() {
    let mut data = xmark_graph(&XmarkConfig::tiny());
    let workload = generate_test_paths(&data, &WorkloadConfig::default());
    let mut dk = DkIndex::build(&data, workload.mine_requirements());
    for (u, v) in generate_update_edges(&data, 40, 7) {
        dk.add_edge(&mut data, u, v);
    }
    dk.promote_to_requirements(&data);
    let mut evaluator = IndexEvaluator::new(dk.index(), &data);
    for q in workload.queries() {
        let out = evaluator.evaluate(q);
        assert!(!out.validated, "still validating {q} after promotion");
        assert_eq!(out.matches, evaluate_on_data(&data, q).0);
    }
}

#[test]
fn ak_and_dk_agree_after_the_same_update_stream() {
    let base = xmark_graph(&XmarkConfig::tiny());
    let edges = generate_update_edges(&base, 30, 55);

    let mut g_ak = base.clone();
    let mut ak = AkIndex::build(&g_ak, 2);
    for &(u, v) in &edges {
        ak.add_edge(&mut g_ak, u, v);
    }
    ak.index().check_invariants(&g_ak).unwrap();

    let mut g_dk = base.clone();
    let mut dk = DkIndex::build(&g_dk, Requirements::uniform(2));
    for &(u, v) in &edges {
        dk.add_edge(&mut g_dk, u, v);
    }
    dk.index().check_invariants(&g_dk).unwrap();

    let workload = generate_test_paths(&g_ak, &WorkloadConfig::default());
    for q in workload.queries() {
        let truth = evaluate_on_data(&g_ak, q).0;
        let ak_out = IndexEvaluator::new(ak.index(), &g_ak).evaluate(q);
        let dk_out = IndexEvaluator::new(dk.index(), &g_dk).evaluate(q);
        assert_eq!(ak_out.matches, truth, "A(2) wrong on {q}");
        assert_eq!(dk_out.matches, truth, "D(k) wrong on {q}");
    }
}

#[test]
fn subgraph_addition_stream_matches_rebuild() {
    let mut data = xmark_graph(&XmarkConfig::tiny());
    let reqs = Requirements::from_pairs([("title", 2), ("name", 1)]);
    let mut dk = DkIndex::build(&data, reqs.clone());
    let mut reference = data.clone();

    for seed in 0..4u64 {
        let sub = random_graph(&RandomGraphConfig {
            nodes: 20,
            labels: 3,
            reference_edges: 3,
            max_fanout: 4,
            seed,
        });
        dk.add_subgraph(&mut data, &sub);
        reference.graft_under_root(&sub);
    }
    let fresh = DkIndex::build(&reference, reqs);
    assert_eq!(data.node_count(), reference.node_count());
    assert_eq!(dk.size(), fresh.size(), "incremental and rebuilt sizes differ");
    assert!(dk
        .index()
        .to_partition()
        .same_equivalence(&fresh.index().to_partition()));
}
